package tpg

import (
	"testing"

	"morphstreamr/internal/types"
)

// txnPair builds two transactions with a cross-transaction parametric
// dependency and a condition-guarded multi-op body.
func testTxns(base uint64) []*types.Txn {
	k0 := types.Key{Table: 0, Row: 0}
	k1 := types.Key{Table: 0, Row: 1}
	t1 := &types.Txn{ID: base, TS: base, Ops: []types.Operation{
		{TxnID: base, TS: base, Idx: 0, Key: k0, Fn: types.FnAdd, Const: 5},
	}}
	t2 := &types.Txn{ID: base + 1, TS: base + 1, Ops: []types.Operation{
		{TxnID: base + 1, TS: base + 1, Idx: 0, Key: k0, Fn: types.FnAdd, Const: 1},
		{TxnID: base + 1, TS: base + 1, Idx: 1, Key: k1, Fn: types.FnGuardedAdd, Const: 2, Deps: []types.Key{k0}},
	}}
	return []*types.Txn{t1, t2}
}

func checkGraphShape(t *testing.T, g *Graph) {
	t.Helper()
	if g.NumOps != 3 {
		t.Fatalf("NumOps = %d, want 3", g.NumOps)
	}
	if len(g.Txns) != 2 || len(g.ChainList) != 2 {
		t.Fatalf("got %d txns, %d chains; want 2, 2", len(g.Txns), len(g.ChainList))
	}
	// The guarded add depends on the k0 chain's latest earlier writer (the
	// second txn's own condition op has TS base+1; latest earlier writer of
	// k0 below base+1 is... the first txn's op at TS base? No: the dep is
	// resolved against writers with TS strictly below the op's own TS.
	dep := g.Txns[1].Ops[1]
	if len(dep.PDSrc) != 1 || dep.PDSrc[0] == nil {
		t.Fatalf("expected an in-epoch parametric producer, got %+v", dep.PDSrc)
	}
	if dep.Pending() != 2 { // LD from its condition op + the PD edge
		t.Fatalf("dep pending = %d, want 2", dep.Pending())
	}
}

// TestBuilderRecyclesGraphs: a released graph is reused and builds the
// same structure a fresh Build produces.
func TestBuilderRecyclesGraphs(t *testing.T) {
	b := NewBuilder()
	g1 := b.Build(testTxns(10))
	checkGraphShape(t, g1)
	g1.CaptureBases(func(types.Key) types.Value { return 7 })
	if dep := g1.Txns[1].Ops[1]; dep.DepVals[0] != 0 {
		// PDSrc non-nil → CaptureBases must not overwrite it.
		t.Fatalf("captured over an in-epoch producer: %v", dep.DepVals)
	}

	b.Release(g1)
	g2 := b.Build(testTxns(20))
	if g2 != g1 {
		t.Fatalf("builder did not recycle the released graph")
	}
	checkGraphShape(t, g2)

	// Node identity must belong to the new build: ops point at the new
	// transactions, chains at the new keys, counters fully reset.
	for _, tn := range g2.Txns {
		if tn.Aborted() {
			t.Fatal("recycled graph kept an abort verdict")
		}
		for _, n := range tn.Ops {
			if n.Executed() {
				t.Fatal("recycled graph kept an executed flag")
			}
			if n.Op.TxnID < 20 {
				t.Fatalf("node still points at the old epoch's op: %+v", n.Op)
			}
			if len(n.PDOut) > 0 && n.PDOut[0].Op.TxnID < 20 {
				t.Fatal("recycled PDOut leaks old-epoch nodes")
			}
		}
	}
}

// TestBuildStructureThenCapture: the split build equals the eager Build.
func TestBuildStructureThenCapture(t *testing.T) {
	readBase := func(k types.Key) types.Value { return types.Value(100 + int64(k.Row)) }
	eager := Build(testTxns(1), readBase)
	split := BuildStructure(testTxns(1))
	split.CaptureBases(readBase)

	for ti, tn := range eager.Txns {
		for oi, n := range tn.Ops {
			m := split.Txns[ti].Ops[oi]
			if n.Pending() != m.Pending() {
				t.Fatalf("txn %d op %d pending: eager %d split %d", ti, oi, n.Pending(), m.Pending())
			}
			for i := range n.DepVals {
				if n.DepVals[i] != m.DepVals[i] {
					t.Fatalf("txn %d op %d depval %d: eager %d split %d",
						ti, oi, i, n.DepVals[i], m.DepVals[i])
				}
			}
		}
	}
}

// TestResetExecRestoresCounters: after executing a graph, ResetExec brings
// every dependency counter and flag back to its post-build state.
func TestResetExecRestoresCounters(t *testing.T) {
	g := BuildStructure(testTxns(1))
	g.CaptureBases(func(types.Key) types.Value { return 0 })
	want := make(map[*OpNode]int32)
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			want[n] = n.Pending()
		}
	}
	// Simulate execution state.
	for _, tn := range g.Txns {
		tn.SetAborted()
		for _, n := range tn.Ops {
			n.pending.Store(0)
			n.executed.Store(true)
		}
	}
	g.ResetExec()
	for _, tn := range g.Txns {
		if tn.Aborted() {
			t.Fatal("ResetExec kept abort verdict")
		}
		for _, n := range tn.Ops {
			if n.Executed() {
				t.Fatal("ResetExec kept executed flag")
			}
			if n.Pending() != want[n] {
				t.Fatalf("pending = %d, want %d", n.Pending(), want[n])
			}
		}
	}
}

// TestArenaPointerStability: pointers taken before growth stay valid.
func TestArenaPointerStability(t *testing.T) {
	var a arena[int]
	var ptrs []*int
	for i := 0; i < 3000; i++ {
		p := a.take()
		*p = i
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if *p != i {
			t.Fatalf("slot %d corrupted: %d", i, *p)
		}
	}
	a.rewind()
	q := a.take()
	if q != ptrs[0] {
		t.Fatal("rewind did not reuse the first slot")
	}
}
