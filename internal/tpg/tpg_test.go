package tpg

import (
	"testing"

	"morphstreamr/internal/store"
	"morphstreamr/internal/types"
)

// The tests in this file replay the paper's running example (Figure 3):
//
//	e1: Deposit(A, V1)      -> txn1 = <O1>           O1 = W1(A, f1(V1))
//	e2: Transfer(A, B, V2)  -> txn2 = <O2, O3>       O2 = W2(A, f2(A,V2)), O3 = W2(B, f3(B,A,V2))
//	e3: Transfer(B, A, V3)  -> txn3 = <O4, O5>       O4 = W3(B, f4(B,V3)), O5 = W3(A, f5(A,B,V3))
//
// Expected dependencies: TD O1->O2 (same key A), TD O3->O4 (same key B),
// TD O2->O5 (A); LD O2->O3, O4->O5; PD O1->O3 (O3 reads A as of ts 2),
// PD O3->O5 (O5 reads B as of ts 3).

var (
	keyA = types.Key{Table: 0, Row: 0}
	keyB = types.Key{Table: 0, Row: 1}
)

func fig3Txns(v1, v2, v3 int64) []*types.Txn {
	txn1 := &types.Txn{ID: 1, TS: 1, Ops: []types.Operation{
		{TxnID: 1, TS: 1, Idx: 0, Key: keyA, Fn: types.FnAdd, Const: v1},
	}}
	txn2 := &types.Txn{ID: 2, TS: 2, Ops: []types.Operation{
		{TxnID: 2, TS: 2, Idx: 0, Key: keyA, Fn: types.FnGuardedSubSelf, Const: v2},
		{TxnID: 2, TS: 2, Idx: 1, Key: keyB, Fn: types.FnGuardedAdd, Const: v2, Deps: []types.Key{keyA}},
	}}
	txn3 := &types.Txn{ID: 3, TS: 3, Ops: []types.Operation{
		{TxnID: 3, TS: 3, Idx: 0, Key: keyB, Fn: types.FnGuardedSubSelf, Const: v3},
		{TxnID: 3, TS: 3, Idx: 1, Key: keyA, Fn: types.FnGuardedAdd, Const: v3, Deps: []types.Key{keyB}},
	}}
	return []*types.Txn{txn1, txn2, txn3}
}

func fig3Store() *store.Store {
	return store.New([]types.TableSpec{{ID: 0, Rows: 2, Init: 0}})
}

func buildFig3(t *testing.T, v1, v2, v3 int64) (*Graph, *store.Store) {
	t.Helper()
	st := fig3Store()
	g := Build(fig3Txns(v1, v2, v3), st.Get)
	return g, st
}

func TestBuildStructure(t *testing.T) {
	g, _ := buildFig3(t, 100, 30, 20)
	if g.NumOps != 5 {
		t.Fatalf("NumOps = %d, want 5", g.NumOps)
	}
	if len(g.ChainList) != 2 {
		t.Fatalf("chains = %d, want 2 (A and B)", len(g.ChainList))
	}
	chainA, chainB := g.Chains[keyA], g.Chains[keyB]
	if len(chainA.Ops) != 3 || len(chainB.Ops) != 2 {
		t.Fatalf("chain lengths: A=%d B=%d, want 3 and 2", len(chainA.Ops), len(chainB.Ops))
	}
	// Chains sorted by timestamp.
	for i := 1; i < len(chainA.Ops); i++ {
		if chainA.Ops[i-1].Op.TS >= chainA.Ops[i].Op.TS {
			t.Error("chain A not in timestamp order")
		}
	}

	o1 := g.Txns[0].Ops[0]
	o2, o3 := g.Txns[1].Ops[0], g.Txns[1].Ops[1]
	o4, o5 := g.Txns[2].Ops[0], g.Txns[2].Ops[1]

	// TD edges via chain links.
	if o2.ChainPrev != o1 || o5.ChainPrev != o2 {
		t.Error("chain A TD edges wrong")
	}
	if o4.ChainPrev != o3 {
		t.Error("chain B TD edge wrong")
	}
	// LD edges.
	if o3.CondSrc != o2 || o5.CondSrc != o4 {
		t.Error("LD edges wrong")
	}
	// PD edges: O3 reads A as of ts 2 -> producer O1; O5 reads B as of
	// ts 3 -> producer O3.
	if len(o3.PDSrc) != 1 || o3.PDSrc[0] != o1 {
		t.Errorf("O3's parametric producer = %v, want O1", o3.PDSrc)
	}
	if len(o5.PDSrc) != 1 || o5.PDSrc[0] != o3 {
		t.Errorf("O5's parametric producer = %v, want O3", o5.PDSrc)
	}
	// Pending counts: O1 ready; O2 waits TD; O3 waits LD+PD; O4 waits TD;
	// O5 waits TD+LD+PD... O5: ChainPrev O2 (+1), CondSrc O4 (+1), PD O3 (+1).
	wantPending := map[*OpNode]int32{o1: 0, o2: 1, o3: 2, o4: 1, o5: 3}
	for n, want := range wantPending {
		if got := n.Pending(); got != want {
			t.Errorf("pending(%v ts=%d) = %d, want %d", n.Op.Key, n.Op.TS, got, want)
		}
	}
	heads := g.Heads()
	if len(heads) != 1 || heads[0] != o1 {
		t.Errorf("heads = %v, want [O1]", heads)
	}
}

// execInOrder fires all nodes in (TS, Idx) order, which is topological.
func execInOrder(g *Graph, st *store.Store) {
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			Fire(n, st)
		}
	}
}

func TestFig3CommitPath(t *testing.T) {
	g, st := buildFig3(t, 100, 30, 20)
	execInOrder(g, st)
	// A: 0 +100 -30 +20 = 90; B: 0 +30 -20 = 10.
	if got := st.Get(keyA); got != 90 {
		t.Errorf("A = %d, want 90", got)
	}
	if got := st.Get(keyB); got != 10 {
		t.Errorf("B = %d, want 10", got)
	}
	for i, tn := range g.Txns {
		if tn.Aborted() {
			t.Errorf("txn %d aborted unexpectedly", i+1)
		}
	}
}

func TestFig3AbortPath(t *testing.T) {
	// V2 > A's balance: txn2 must abort atomically; txn3 still runs
	// against the untouched balances.
	g, st := buildFig3(t, 100, 1000, 20)
	execInOrder(g, st)
	if !g.Txns[1].Aborted() {
		t.Fatal("txn2 should abort (insufficient balance)")
	}
	if g.Txns[0].Aborted() {
		t.Fatal("txn1 must not abort")
	}
	// B never received txn2's credit, so txn3's guard (B >= 20) fails
	// too: the abort cascades through real balances, not through edges.
	if !g.Txns[2].Aborted() {
		t.Fatal("txn3 should abort: B's balance is 0 without txn2's credit")
	}
	if got := st.Get(keyA); got != 100 {
		t.Errorf("A = %d, want 100", got)
	}
	if got := st.Get(keyB); got != 0 {
		t.Errorf("B = %d, want 0", got)
	}
}

func TestAbortedProducerYieldsPreviousVersion(t *testing.T) {
	// txn2 aborts; txn3's parametric read of B must see B's value as of
	// ts 3, i.e. the value before txn2's no-op write (0), and O5 must
	// still see A = 100 for its own chain.
	g, st := buildFig3(t, 100, 1000, 0)
	execInOrder(g, st)
	o5 := g.Txns[2].Ops[1]
	if o5.DepVals[0] != 0 {
		t.Errorf("O5 read B = %d through aborted producer, want 0", o5.DepVals[0])
	}
	// txn3 transfers 0: guard B >= 0 passes; A += 0.
	if g.Txns[2].Aborted() {
		t.Error("txn3 should commit with amount 0")
	}
	if got := st.Get(keyA); got != 100 {
		t.Errorf("A = %d, want 100", got)
	}
}

func TestResolveOrdersChainSuccessorFirst(t *testing.T) {
	g, st := buildFig3(t, 100, 30, 20)
	o1 := g.Txns[0].Ops[0]
	o2, o3 := g.Txns[1].Ops[0], g.Txns[1].Ops[1]
	Fire(o1, st)
	ready := Resolve(o1, nil)
	if len(ready) != 1 || ready[0] != o2 {
		t.Fatalf("after O1: ready = %v, want [O2]", ready)
	}
	Fire(o2, st)
	ready = Resolve(o2, nil)
	// O2 completes chain A's TD to O5 (still pending LD+PD) and the LD to
	// O3 (still pending PD from O1 — already resolved? O3's PD producer is
	// O1, resolved when O1 resolved). O1's resolve already decremented
	// O3's PD; so after O2, O3 is ready.
	if len(ready) != 1 || ready[0] != o3 {
		t.Fatalf("after O2: ready = %v, want [O3]", ready)
	}
}

func TestDoubleFirePanics(t *testing.T) {
	g, st := buildFig3(t, 1, 1, 1)
	o1 := g.Txns[0].Ops[0]
	Fire(o1, st)
	defer func() {
		if recover() == nil {
			t.Error("double Fire must panic")
		}
	}()
	Fire(o1, st)
}

func TestEdgesPointForward(t *testing.T) {
	// Acyclicity by construction: every edge goes from smaller to larger
	// (TS, Idx). Verify on a moderately sized random-ish graph.
	var txns []*types.Txn
	for i := uint64(1); i <= 50; i++ {
		k1 := types.Key{Table: 0, Row: uint32(i % 7)}
		k2 := types.Key{Table: 0, Row: uint32((i + 3) % 7)}
		txn := &types.Txn{ID: i, TS: i, Ops: []types.Operation{
			{TxnID: i, TS: i, Idx: 0, Key: k1, Fn: types.FnAdd, Const: 1},
			{TxnID: i, TS: i, Idx: 1, Key: k2, Fn: types.FnGuardedAdd, Const: 1, Deps: []types.Key{k1}},
		}}
		txns = append(txns, txn)
	}
	st := store.New([]types.TableSpec{{ID: 0, Rows: 7, Init: 5}})
	g := Build(txns, st.Get)
	after := func(a, b *OpNode) bool {
		return a.Op.TS < b.Op.TS || (a.Op.TS == b.Op.TS && a.Op.Idx < b.Op.Idx)
	}
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			if n.ChainNext != nil && !after(n, n.ChainNext) {
				t.Fatal("TD edge points backward")
			}
			for _, d := range n.LDOut {
				if !after(n, d) {
					t.Fatal("LD edge points backward")
				}
			}
			for _, d := range n.PDOut {
				if !after(n, d) {
					t.Fatal("PD edge points backward")
				}
			}
		}
	}
	// Pending counts must equal incoming edge counts.
	incoming := make(map[*OpNode]int32)
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			if n.ChainNext != nil {
				incoming[n.ChainNext]++
			}
			for _, d := range n.LDOut {
				incoming[d]++
			}
			for _, d := range n.PDOut {
				incoming[d]++
			}
		}
	}
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			if n.Pending() != incoming[n] {
				t.Fatalf("pending(%v@%d) = %d, incoming edges = %d",
					n.Op.Key, n.Op.TS, n.Pending(), incoming[n])
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	st := fig3Store()
	g := Build(nil, st.Get)
	if g.NumOps != 0 || len(g.Heads()) != 0 || len(g.ExecutedTxns()) != 0 {
		t.Error("empty graph should be inert")
	}
}

func TestExecutedTxnsViews(t *testing.T) {
	g, st := buildFig3(t, 100, 30, 20)
	execInOrder(g, st)
	ex := g.ExecutedTxns()
	if len(ex) != 3 {
		t.Fatalf("executed views = %d, want 3", len(ex))
	}
	if ex[1].Aborted || ex[1].Results[0] != 70 || ex[1].Results[1] != 30 {
		t.Errorf("txn2 executed view = %+v, want results [70 30]", ex[1])
	}
}
