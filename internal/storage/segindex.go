package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadSegIndex tags segment-index decode failures.
var ErrBadSegIndex = errors.New("storage: bad segment index")

// SegMeta is one segment's index entry, exported for diagnostics and for
// durable index externalisation (a File-backed segment store persists the
// index beside the slabs; the in-memory store exposes it for the fuzz
// corpus and the store bench).
type SegMeta struct {
	// Seq is the segment's monotone seal sequence.
	Seq uint64
	// Lo and Hi are the minimum and maximum record epochs in the segment.
	Lo, Hi uint64
	// SeekHi is the prefix-maximum of Hi through this segment — the
	// monotone key the epoch seek binary-searches.
	SeekHi uint64
	// Records and Bytes size the segment.
	Records uint64
	Bytes   uint64
}

// Index returns the named log's current segment index (sealed entries in
// order, then the active segment if it holds records).
func (s *SegStore) Index(name string) []SegMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.logs[name]
	if lg == nil {
		return nil
	}
	out := make([]SegMeta, 0, len(lg.sealed)+1)
	for _, sg := range lg.sealed {
		out = append(out, segMeta(sg))
	}
	if lg.active != nil && lg.active.n > 0 {
		m := segMeta(lg.active)
		if n := len(out); n > 0 && out[n-1].SeekHi > m.SeekHi {
			m.SeekHi = out[n-1].SeekHi
		}
		out = append(out, m)
	}
	return out
}

func segMeta(sg *segment) SegMeta {
	seek := sg.seekHi
	if sg.hi > seek {
		seek = sg.hi // active segment: seal has not stamped the prefix max yet
	}
	return SegMeta{
		Seq: sg.seq, Lo: sg.lo, Hi: sg.hi, SeekHi: seek,
		Records: uint64(sg.n), Bytes: uint64(len(sg.buf)),
	}
}

// segIndexMagic opens every encoded index; the version gates layout.
const (
	segIndexMagic   = "MSI1"
	segIndexVersion = 1
)

// EncodeSegIndex serialises a segment index.
func EncodeSegIndex(metas []SegMeta) []byte {
	b := make([]byte, 0, 16+len(metas)*16)
	b = append(b, segIndexMagic...)
	b = binary.AppendUvarint(b, segIndexVersion)
	b = binary.AppendUvarint(b, uint64(len(metas)))
	for _, m := range metas {
		b = binary.AppendUvarint(b, m.Seq)
		b = binary.AppendUvarint(b, m.Lo)
		b = binary.AppendUvarint(b, m.Hi)
		b = binary.AppendUvarint(b, m.SeekHi)
		b = binary.AppendUvarint(b, m.Records)
		b = binary.AppendUvarint(b, m.Bytes)
	}
	return b
}

// DecodeSegIndex parses an encoded segment index and validates its
// invariants: entry count bounded by the input, Lo <= Hi per segment,
// monotone Seq, and monotone SeekHi that never falls below the segment's
// own Hi. A decoder that accepted an index violating these would send an
// epoch seek to the wrong segment, which is why the fuzz target hammers
// exactly this routine.
func DecodeSegIndex(b []byte) ([]SegMeta, error) {
	if len(b) < len(segIndexMagic) || string(b[:len(segIndexMagic)]) != segIndexMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadSegIndex)
	}
	d := manifestReader{b: b[len(segIndexMagic):]}
	if v := d.uvarint(); d.err == nil && v != segIndexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSegIndex, v)
	}
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: entry count %d", ErrBadSegIndex, n)
	}
	metas := make([]SegMeta, 0, n)
	var prevSeq, prevSeek uint64
	for i := uint64(0); i < n; i++ {
		m := SegMeta{
			Seq: d.uvarint(), Lo: d.uvarint(), Hi: d.uvarint(),
			SeekHi: d.uvarint(), Records: d.uvarint(), Bytes: d.uvarint(),
		}
		if d.err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadSegIndex, i, d.err)
		}
		if m.Lo > m.Hi {
			return nil, fmt.Errorf("%w: entry %d: lo %d > hi %d", ErrBadSegIndex, i, m.Lo, m.Hi)
		}
		if i > 0 && m.Seq <= prevSeq {
			return nil, fmt.Errorf("%w: entry %d: seq %d not increasing", ErrBadSegIndex, i, m.Seq)
		}
		if m.SeekHi < m.Hi || m.SeekHi < prevSeek {
			return nil, fmt.Errorf("%w: entry %d: seekHi %d not a prefix max", ErrBadSegIndex, i, m.SeekHi)
		}
		prevSeq, prevSeek = m.Seq, m.SeekHi
		metas = append(metas, m)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSegIndex, len(d.b)-d.off)
	}
	return metas, nil
}
