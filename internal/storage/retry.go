package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Transient-fault classification. A device (or an injector such as Flaky)
// marks an error transient by wrapping it with Transient; the Retrying
// wrapper retries exactly those errors and surfaces everything else
// immediately. Fatal errors — ErrInjected fail-stops, ErrFenced writes,
// real medium corruption — must not be retried: retrying a write the
// medium half-applied is how logs grow silent gaps.
var ErrTransient = errors.New("storage: transient fault")

// Transient wraps err so that errors.Is(_, ErrTransient) reports true while
// the original error remains matchable through the chain.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// ErrRetryExhausted wraps errors surfaced by Retrying when a transient
// fault outlasted the per-operation retry budget (attempts or deadline).
// The error chain still matches ErrTransient — the last underlying fault —
// but callers must treat the surfaced error as fatal: the retry layer has
// already spent the transient budget.
var ErrRetryExhausted = errors.New("storage: retry budget exhausted")

// ErrCircuitOpen is returned without touching the device while the circuit
// breaker is cooling down after repeated exhausted operations: when the
// device has been failing for several consecutive operations, hammering it
// with more retries only delays the supervisor's verdict.
var ErrCircuitOpen = errors.New("storage: circuit breaker open")

// ErrRetryCanceled is surfaced by a Retrying wrapper that was Closed: an
// in-flight backoff sleep is interrupted immediately and subsequent
// operations fail fast without touching the device. It is deliberately not
// ErrTransient-classified — a canceled wrapper belongs to a shutdown or an
// abandoned incarnation, and nothing above it should retry.
var ErrRetryCanceled = errors.New("storage: retry canceled")

// RetryPolicy tunes a Retrying wrapper. The zero value selects defaults
// suitable for the in-memory and throttled devices used in tests and
// benchmarks; production File devices want larger deadlines.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, first included
	// (default 6).
	MaxAttempts int
	// BaseBackoff is the delay after the first failed attempt; it doubles
	// per attempt up to MaxBackoff (defaults 500µs and 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpDeadline caps one operation's wall time including backoff sleeps
	// (default 2s). Crossing it surfaces ErrRetryExhausted even with
	// attempts left.
	OpDeadline time.Duration
	// BreakerThreshold is how many consecutive exhausted operations open
	// the circuit (default 3); BreakerCooldown is how long it stays open
	// before a half-open probe is allowed (default 250ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// JitterSeed seeds the deterministic backoff jitter (default 1).
	JitterSeed uint64
	// OnRetry, when non-nil, observes every retried attempt — the
	// supervisor uses it to flip its state gauge to Degraded while a storm
	// is being absorbed. Called without internal locks held.
	OnRetry func(op string, attempt int, err error)
	// Sleep and Now are test seams (defaults time.Sleep and time.Now).
	Sleep func(time.Duration)
	Now   func() time.Time
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.OpDeadline <= 0 {
		p.OpDeadline = 2 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 250 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// RetryStats summarises a Retrying wrapper's activity.
type RetryStats struct {
	// Retries counts retried attempts (attempt ≥ 2).
	Retries int64
	// Absorbed counts operations that succeeded after at least one retry —
	// transient storms the engine never saw.
	Absorbed int64
	// Exhausted counts operations surfaced with ErrRetryExhausted.
	Exhausted int64
	// Fatal counts operations surfaced immediately on a non-transient error.
	Fatal int64
	// BreakerOpens counts circuit-breaker openings; FastFails counts
	// operations rejected with ErrCircuitOpen while open.
	BreakerOpens int64
	FastFails    int64
}

// Retrying wraps a Device with transient-fault absorption: operations
// failing with an ErrTransient-classified error are retried under
// exponential backoff with deterministic jitter, bounded by attempts and a
// per-operation deadline, behind a circuit breaker that fails fast once
// the device has been refusing several consecutive operations.
//
// It is the first layer of the self-healing runtime: storms short enough
// for the budget are invisible above it (no engine crash, no recovery);
// anything longer surfaces exactly once as a fatal error for the
// supervisor to heal. All methods are safe for concurrent use.
type Retrying struct {
	Inner Device
	pol   RetryPolicy

	// done is closed by Close; customSleep holds a caller-supplied Sleep
	// seam (nil when the interruptible default timer is in use).
	done        chan struct{}
	closeOnce   sync.Once
	customSleep func(time.Duration)

	mu        sync.Mutex
	rng       uint64
	consec    int
	open      bool
	openUntil time.Time
	lastErr   error
	stats     RetryStats
}

// NewRetrying wraps inner under the given policy (zero fields default).
func NewRetrying(inner Device, pol RetryPolicy) *Retrying {
	custom := pol.Sleep
	p := pol.withDefaults()
	return &Retrying{Inner: inner, pol: p, rng: p.JitterSeed,
		done: make(chan struct{}), customSleep: custom}
}

// Close cancels the wrapper: an in-flight backoff sleep is interrupted and
// the operation surfaces ErrRetryCanceled promptly; later operations fail
// fast the same way. Close is idempotent and safe to race with operations.
// A fatal shutdown no longer has to wait out a full backoff window — the
// fence makes the zombie's writes harmless, Close makes them finish now.
func (r *Retrying) Close() {
	r.closeOnce.Do(func() { close(r.done) })
}

// canceled reports whether Close has been called.
func (r *Retrying) canceled() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// sleep blocks for d or until Close, whichever is first; it returns false
// when the wrapper was canceled. A caller-supplied Sleep seam runs to
// completion (tests depend on its exact call count) and the cancellation
// check happens after it returns.
func (r *Retrying) sleep(d time.Duration) bool {
	if r.customSleep != nil {
		r.customSleep(d)
		return !r.canceled()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.done:
		return false
	}
}

// Stats returns a snapshot of the wrapper's counters.
func (r *Retrying) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// do runs one operation under the retry loop.
func (r *Retrying) do(op string, fn func() error) error {
	if r.canceled() {
		return fmt.Errorf("storage: %s: %w", op, ErrRetryCanceled)
	}
	if err := r.preflight(); err != nil {
		return err
	}
	start := r.pol.Now()
	backoff := r.pol.BaseBackoff
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			r.succeed(attempt)
			return nil
		}
		if !errors.Is(err, ErrTransient) {
			r.mu.Lock()
			r.stats.Fatal++
			r.mu.Unlock()
			return err
		}
		if cb := r.pol.OnRetry; cb != nil {
			cb(op, attempt, err)
		}
		if attempt >= r.pol.MaxAttempts || r.pol.Now().Sub(start) >= r.pol.OpDeadline {
			r.exhaust(err)
			return fmt.Errorf("storage: %s: %w after %d attempts: %w",
				op, ErrRetryExhausted, attempt, err)
		}
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		if !r.sleep(r.jitter(backoff)) {
			r.mu.Lock()
			r.stats.Fatal++
			r.mu.Unlock()
			return fmt.Errorf("storage: %s: %w during backoff after %d attempts: %v",
				op, ErrRetryCanceled, attempt, err)
		}
		backoff *= 2
		if backoff > r.pol.MaxBackoff {
			backoff = r.pol.MaxBackoff
		}
	}
}

// preflight enforces the circuit breaker: open rejects immediately; once
// the cooldown has passed the breaker goes half-open and lets operations
// probe the device (a success closes it, an exhausted probe re-opens it).
func (r *Retrying) preflight() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.open {
		return nil
	}
	if r.pol.Now().Before(r.openUntil) {
		r.stats.FastFails++
		return fmt.Errorf("%w (cooling down): %w", ErrCircuitOpen, r.lastErr)
	}
	return nil // half-open probe
}

func (r *Retrying) succeed(attempt int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if attempt > 1 {
		r.stats.Absorbed++
	}
	r.consec = 0
	r.open = false
}

func (r *Retrying) exhaust(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Exhausted++
	r.lastErr = err
	r.consec++
	if r.consec >= r.pol.BreakerThreshold {
		r.open = true
		r.openUntil = r.pol.Now().Add(r.pol.BreakerCooldown)
		r.stats.BreakerOpens++
	}
}

// jitter spreads a backoff uniformly over [0.5, 1.5)·d with a splitmix64
// stream, so retry storms from concurrent operations decorrelate while
// tests stay reproducible under a fixed seed.
func (r *Retrying) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	r.mu.Unlock()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(uint64(1)<<53)
	return time.Duration((0.5 + frac) * float64(d))
}

// Append implements Device.
func (r *Retrying) Append(log string, rec Record) error {
	return r.do("append["+log+"]", func() error { return r.Inner.Append(log, rec) })
}

// WriteBlob implements Device.
func (r *Retrying) WriteBlob(name string, payload []byte) error {
	return r.do("blob["+name+"]", func() error { return r.Inner.WriteBlob(name, payload) })
}

// Truncate implements Device.
func (r *Retrying) Truncate(log string, upTo uint64) error {
	return r.do("truncate["+log+"]", func() error { return r.Inner.Truncate(log, upTo) })
}

// ReleaseThrough implements Releaser; GC retries like truncation does.
func (r *Retrying) ReleaseThrough(log string, epoch uint64) error {
	return r.do("release["+log+"]", func() error { return Release(r.Inner, log, epoch) })
}

// ReadFrom implements LogReader. Cursor acquisition retries like any read;
// Next() itself is not retried — segment cursors read immutable snapshots,
// so a mid-stream error is corruption, not a transient fault.
func (r *Retrying) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	var out Cursor
	err := r.do("readfrom["+log+"]", func() error {
		var e error
		out, e = ReadFrom(r.Inner, log, fromEpoch)
		return e
	})
	return out, err
}

// ReadLog implements Device; recovery reads retry like writes do.
func (r *Retrying) ReadLog(log string) ([]Record, error) {
	var out []Record
	err := r.do("readlog["+log+"]", func() error {
		var e error
		out, e = r.Inner.ReadLog(log)
		return e
	})
	return out, err
}

// ReadBlob implements Device.
func (r *Retrying) ReadBlob(name string) ([]byte, bool, error) {
	var (
		out []byte
		ok  bool
	)
	err := r.do("readblob["+name+"]", func() error {
		var e error
		out, ok, e = r.Inner.ReadBlob(name)
		return e
	})
	return out, ok, err
}

// BytesWritten implements Device.
func (r *Retrying) BytesWritten() map[string]int64 { return r.Inner.BytesWritten() }
