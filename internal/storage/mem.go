package storage

import (
	"sync"
)

// Mem is an in-process Device. It survives Engine.Crash (which discards the
// engine, not the device), matching the single-node-stoppage failure model
// where the SSD's content outlives the power cut.
type Mem struct {
	mu    sync.Mutex
	logs  map[string][]Record
	blobs map[string][]byte
	bytes map[string]int64
}

// NewMem creates an empty in-memory device.
func NewMem() *Mem {
	return &Mem{
		logs:  make(map[string][]Record),
		blobs: make(map[string][]byte),
		bytes: make(map[string]int64),
	}
}

// Append implements Device.
func (m *Mem) Append(log string, rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Copy the payload: callers reuse encode buffers.
	p := append([]byte(nil), rec.Payload...)
	m.logs[log] = append(m.logs[log], Record{Epoch: rec.Epoch, Payload: p})
	m.bytes[log] += int64(len(p))
	return nil
}

// ReadLog implements Device.
func (m *Mem) ReadLog(log string) ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.logs[log]
	out := make([]Record, len(src))
	for i, rec := range src {
		out[i] = Record{Epoch: rec.Epoch, Payload: append([]byte(nil), rec.Payload...)}
	}
	return out, nil
}

// WriteBlob implements Device.
func (m *Mem) WriteBlob(name string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[name] = append([]byte(nil), payload...)
	m.bytes[name] += int64(len(payload))
	return nil
}

// ReadBlob implements Device.
func (m *Mem) ReadBlob(name string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[name]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), b...), true, nil
}

// Truncate implements Device.
func (m *Mem) Truncate(log string, upTo uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.logs[log]
	kept := src[:0]
	for _, rec := range src {
		if rec.Epoch > upTo {
			kept = append(kept, rec)
		}
	}
	m.logs[log] = kept
	return nil
}

// BytesWritten implements Device.
func (m *Mem) BytesWritten() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}
