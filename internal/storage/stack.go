package storage

import "fmt"

// Stack assembles a device wrapper stack in the one legal order, replacing
// the ad-hoc wrapping that used to be decided inline at every call site
// (core.New, the supervisor, the crash-point sweep, chaos runs). From the
// medium outward the canonical order is:
//
//	base → Trace → Faulty/Flaky → Compressed → Throttled(SSD) → Fence view → Retrying
//
// The order is load-bearing, not stylistic:
//
//   - Trace and the fault injectors sit directly on the medium, so a write
//     site enumerated by Trace is the same write a Faulty budget or a
//     Flaky storm targets, and fault injection models the medium failing
//     (below compression and throttling, which are engine-side concerns).
//   - Compressed sits below Throttled so the SSD model charges the bytes
//     that actually reach the device, not the uncompressed payload.
//   - The fence view sits above the performance model: a fenced zombie is
//     rejected before it burns simulated bandwidth.
//   - Retrying is outermost so each retry attempt re-takes the fence check
//     individually — advancing the fence never waits out a backoff sleep,
//     and a fenced retry loop dies on its next attempt.
//
// Wrapper methods record an error on out-of-order or duplicate use;
// Build surfaces it. Handles to the wrappers that expose behaviour beyond
// the Device interface (Trace sites, Flaky scripting, Faulty budgets,
// Retrying stats) are published as fields once the wrapper is applied.
type Stack struct {
	dev  Device
	rank int
	err  error

	// Trace, Flaky, Faulty, and Retrying expose the corresponding wrapper
	// when it was applied (nil otherwise).
	Trace    *Trace
	Flaky    *Flaky
	Faulty   *Faulty
	Retrying *Retrying
}

// Wrapper ranks, innermost to outermost.
const (
	rankBase = iota
	rankTrace
	rankInject
	rankCompress
	rankThrottle
	rankFence
	rankRetry
)

func rankName(r int) string {
	switch r {
	case rankTrace:
		return "Trace"
	case rankInject:
		return "Faulty/Flaky"
	case rankCompress:
		return "Compressed"
	case rankThrottle:
		return "Throttled"
	case rankFence:
		return "Fence view"
	case rankRetry:
		return "Retrying"
	default:
		return fmt.Sprintf("rank(%d)", r)
	}
}

// NewStack starts a stack on the given base device.
func NewStack(base Device) *Stack {
	return &Stack{dev: base, rank: rankBase}
}

// layer checks the ordering invariant and advances the rank. Equal ranks
// are rejected too: no layer may appear twice (double compression would
// corrupt payloads, double retry would square the backoff budget).
func (s *Stack) layer(r int) bool {
	if s.err != nil {
		return false
	}
	if r <= s.rank {
		s.err = fmt.Errorf("storage: illegal wrapper order: %s must wrap %s, not the other way around",
			rankName(r), rankName(s.rank))
		return false
	}
	s.rank = r
	return true
}

// WithTrace adds write-site enumeration directly on the medium.
func (s *Stack) WithTrace() *Stack {
	if s.layer(rankTrace) {
		s.Trace = NewTrace(s.dev)
		s.dev = s.Trace
	}
	return s
}

// WithFlaky adds the scripted fault injector (storms, outages, latency
// windows). Script it through the Flaky handle.
func (s *Stack) WithFlaky() *Stack {
	if s.layer(rankInject) {
		s.Flaky = NewFlaky(s.dev)
		s.dev = s.Flaky
	}
	return s
}

// WithFaulty adds the budgeted crash-point injector: the device dies at
// the budget-th write matching target (empty target matches every write).
func (s *Stack) WithFaulty(budget int, mode FaultMode, target string) *Stack {
	if s.layer(rankInject) {
		s.Faulty = NewFaultyMode(s.dev, budget, mode, target)
		s.dev = s.Faulty
	}
	return s
}

// WithCompression DEFLATE-compresses every durable payload. A base device
// that is already a *Compressed is left alone (re-wrapping would double-
// compress), matching the guard core.New used to apply inline.
func (s *Stack) WithCompression() *Stack {
	if _, already := s.dev.(*Compressed); already {
		s.layer(rankCompress) // consume the rank; duplicates above still fail
		return s
	}
	if s.layer(rankCompress) {
		s.dev = NewCompressed(s.dev)
	}
	return s
}

// WithSSD applies the paper's Optane SSD performance envelope. An already
// throttled base device is left alone, matching core.New's former guard.
func (s *Stack) WithSSD() *Stack {
	if _, already := s.dev.(*Throttled); already {
		s.layer(rankThrottle)
		return s
	}
	if s.layer(rankThrottle) {
		s.dev = DefaultSSD(s.dev)
	}
	return s
}

// WithFence binds writes to the fence's current live generation: the view
// is rejected with ErrFenced once the fence advances past it. The fence
// object itself persists across incarnations; the view forwards to the
// stack built so far.
func (s *Stack) WithFence(f *Fence) *Stack {
	if s.layer(rankFence) {
		s.dev = f.ViewOf(s.dev, f.Generation())
	}
	return s
}

// WithRetry adds transient-fault absorption (backoff, deadline, circuit
// breaker) as the outermost layer. Stats are read through the Retrying
// handle.
func (s *Stack) WithRetry(pol RetryPolicy) *Stack {
	if s.layer(rankRetry) {
		s.Retrying = NewRetrying(s.dev, pol)
		s.dev = s.Retrying
	}
	return s
}

// Build returns the assembled device, or the first ordering error.
func (s *Stack) Build() (Device, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.dev, nil
}

// Close cancels the stack's Retrying layer, if one was applied: an
// in-flight backoff sleep is interrupted and the operation surfaces
// ErrRetryCanceled promptly. Other layers hold no background resources.
// Idempotent; a no-op on retry-less stacks.
func (s *Stack) Close() {
	if s.Retrying != nil {
		s.Retrying.Close()
	}
}

// MustBuild is Build for call sites whose layer sequence is statically
// correct (no conditional wrapping); an ordering error there is a
// programming bug, not a runtime condition.
func (s *Stack) MustBuild() Device {
	dev, err := s.Build()
	if err != nil {
		panic(err)
	}
	return dev
}
