package storage

import (
	"errors"
	"testing"
	"time"
)

// TestCloseInterruptsBackoffSleep (satellite: cancellable retries): closing
// a Retrying wrapper mid-backoff interrupts the sleep promptly — tearing a
// stack down never waits out a multi-second backoff ladder.
func TestCloseInterruptsBackoffSleep(t *testing.T) {
	flaky := NewFlaky(NewMem())
	flaky.AddStorm(0, 1<<20) // every write fails transiently, forever
	r := NewRetrying(flaky, RetryPolicy{
		MaxAttempts: 1 << 20,
		BaseBackoff: 30 * time.Second,
		MaxBackoff:  time.Minute,
		OpDeadline:  time.Hour,
	})
	errCh := make(chan error, 1)
	started := time.Now()
	go func() {
		errCh <- r.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	}()
	time.Sleep(20 * time.Millisecond) // let the op enter its first backoff
	r.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrRetryCanceled) {
			t.Fatalf("want ErrRetryCanceled, got %v", err)
		}
		// A canceled operation is a shutdown artifact, not a device fault:
		// it must not read as transient or the callers' fault taxonomy
		// would count teardowns as storms.
		if errors.Is(err, ErrTransient) || errors.Is(err, ErrRetryExhausted) {
			t.Fatalf("canceled error misclassified: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the backoff sleep")
	}
	if waited := time.Since(started); waited > 2*time.Second {
		t.Fatalf("interrupt took %v; the 30s backoff was waited out", waited)
	}
}

// TestClosedRetryingFailsFast: operations after Close never touch the
// device, and Close is idempotent.
func TestClosedRetryingFailsFast(t *testing.T) {
	mem := NewMem()
	r := NewRetrying(mem, RetryPolicy{})
	r.Close()
	r.Close() // idempotent
	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")}); !errors.Is(err, ErrRetryCanceled) {
		t.Fatalf("Append after Close: want ErrRetryCanceled, got %v", err)
	}
	if _, err := r.ReadLog("log"); !errors.Is(err, ErrRetryCanceled) {
		t.Fatalf("ReadLog after Close: want ErrRetryCanceled, got %v", err)
	}
	if recs, _ := mem.ReadLog("log"); len(recs) != 0 {
		t.Fatalf("closed wrapper reached the device: %d records", len(recs))
	}
}

// TestStackCloseCancelsRetry: the stack-level Close reaches the Retrying
// layer, and is a safe no-op on retry-less stacks.
func TestStackCloseCancelsRetry(t *testing.T) {
	st := NewStack(NewMem()).WithFlaky().WithRetry(RetryPolicy{
		MaxAttempts: 1 << 20,
		BaseBackoff: 30 * time.Second,
		OpDeadline:  time.Hour,
	})
	dev, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	st.Flaky.AddStorm(0, 1<<20)
	errCh := make(chan error, 1)
	go func() {
		errCh <- dev.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	}()
	time.Sleep(20 * time.Millisecond)
	st.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrRetryCanceled) {
			t.Fatalf("want ErrRetryCanceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stack.Close did not interrupt the in-flight retry")
	}
	st.Close() // idempotent

	// A stack without a retry layer closes as a no-op.
	NewStack(NewMem()).Close()
}

// TestCustomSleepStillCounts: the fake-clock seam used across the retry
// tests runs each scheduled sleep to completion (call counts stay exact)
// and honors cancellation only at the attempt boundary.
func TestCustomSleepStillCounts(t *testing.T) {
	flaky := NewFlaky(NewMem())
	flaky.AddStorm(0, 100)
	r, clk := newTestRetrying(flaky, RetryPolicy{MaxAttempts: 4})
	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")}); !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("want ErrRetryExhausted, got %v", err)
	}
	if len(clk.sleeps) != 3 {
		t.Fatalf("custom sleep called %d times, want 3", len(clk.sleeps))
	}
	r.Close()
	if err := r.Append("log", Record{Epoch: 2, Payload: []byte("b")}); !errors.Is(err, ErrRetryCanceled) {
		t.Fatalf("want ErrRetryCanceled after Close, got %v", err)
	}
	if len(clk.sleeps) != 3 {
		t.Fatalf("closed wrapper slept again: %d", len(clk.sleeps))
	}
}
