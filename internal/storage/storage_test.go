package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// deviceContract runs the behaviour shared by all Device implementations.
func deviceContract(t *testing.T, dev Device) {
	t.Helper()
	// Empty reads.
	recs, err := dev.ReadLog("missing")
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing log: %v, %v", recs, err)
	}
	if _, ok, err := dev.ReadBlob("missing"); ok || err != nil {
		t.Fatal("missing blob must read as absent")
	}

	// Appends preserve order and epochs.
	for ep := uint64(1); ep <= 5; ep++ {
		if err := dev.Append("log", Record{Epoch: ep, Payload: []byte{byte(ep), byte(ep + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err = dev.ReadLog("log")
	if err != nil || len(recs) != 5 {
		t.Fatalf("read 5 records: %v, %v", len(recs), err)
	}
	for i, rec := range recs {
		if rec.Epoch != uint64(i+1) || rec.Payload[0] != byte(i+1) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}

	// Truncation drops the prefix.
	if err := dev.Truncate("log", 3); err != nil {
		t.Fatal(err)
	}
	recs, _ = dev.ReadLog("log")
	if len(recs) != 2 || recs[0].Epoch != 4 {
		t.Fatalf("after truncate: %+v", recs)
	}
	// Appends continue after truncation.
	if err := dev.Append("log", Record{Epoch: 6, Payload: []byte{6}}); err != nil {
		t.Fatal(err)
	}
	recs, _ = dev.ReadLog("log")
	if len(recs) != 3 || recs[2].Epoch != 6 {
		t.Fatalf("after post-truncate append: %+v", recs)
	}

	// Blobs replace atomically (last write wins).
	if err := dev.WriteBlob("snap", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlob("snap", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, ok, err := dev.ReadBlob("snap")
	if err != nil || !ok || string(b) != "v2" {
		t.Fatalf("blob = %q, %v, %v", b, ok, err)
	}

	// Byte accounting covers both names. Exact sizes depend on the
	// device's on-media representation (compression wrappers store tagged
	// payloads), so the contract only requires non-zero per-name counts.
	bw := dev.BytesWritten()
	if bw["log"] == 0 || bw["snap"] == 0 {
		t.Errorf("byte accounting missing entries: %v", bw)
	}
	if SumBytes(bw) != bw["log"]+bw["snap"] {
		t.Errorf("total = %d, want %d", SumBytes(bw), bw["log"]+bw["snap"])
	}
	names := SortedNames(bw)
	if len(names) != 2 || names[0] != "log" {
		t.Errorf("names = %v", names)
	}
}

// TestRawByteAccounting: uncompressed devices account exact payload sizes.
func TestRawByteAccounting(t *testing.T) {
	dev := NewMem()
	dev.Append("log", Record{Epoch: 1, Payload: []byte{1, 2, 3}})
	dev.WriteBlob("snap", []byte("abcd"))
	bw := dev.BytesWritten()
	if bw["log"] != 3 || bw["snap"] != 4 {
		t.Errorf("raw accounting = %v, want log=3 snap=4", bw)
	}
}

func TestMemDevice(t *testing.T) {
	deviceContract(t, NewMem())
}

func TestFileDevice(t *testing.T) {
	dev, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	deviceContract(t, dev)
}

func TestThrottledDevice(t *testing.T) {
	th := &Throttled{Inner: NewMem(), OpLatency: 0}
	deviceContract(t, th)
}

// TestFileDevicePersists: a new File instance over the same directory sees
// everything a previous instance wrote — the property real recovery needs.
func TestFileDevicePersists(t *testing.T) {
	dir := t.TempDir()
	dev, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Append(LogInput, Record{Epoch: 1, Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlob(BlobSnapshot, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	dev.Close()

	dev2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	recs, err := dev2.ReadLog(LogInput)
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "abc" {
		t.Fatalf("reopened log: %+v, %v", recs, err)
	}
	b, ok, err := dev2.ReadBlob(BlobSnapshot)
	if err != nil || !ok || string(b) != "snapshot" {
		t.Fatalf("reopened blob: %q, %v, %v", b, ok, err)
	}
}

func TestMemCopiesPayloads(t *testing.T) {
	dev := NewMem()
	buf := []byte{1, 2, 3}
	dev.Append("log", Record{Epoch: 1, Payload: buf})
	buf[0] = 99
	recs, _ := dev.ReadLog("log")
	if recs[0].Payload[0] != 1 {
		t.Error("device aliases caller buffers")
	}
	recs[0].Payload[1] = 99
	recs2, _ := dev.ReadLog("log")
	if recs2[0].Payload[1] != 2 {
		t.Error("reads alias device storage")
	}
}

func TestThrottleChargesTime(t *testing.T) {
	th := &Throttled{
		Inner:            NewMem(),
		OpLatency:        2 * time.Millisecond,
		WriteBytesPerSec: 1 << 20, // 1 MiB/s
	}
	payload := make([]byte, 1<<18) // 256 KiB -> 250ms at 1 MiB/s
	start := time.Now()
	if err := th.Append("log", Record{Epoch: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("throttled append took %v; want >= ~250ms", elapsed)
	}
}

func TestDefaultSSDEnvelope(t *testing.T) {
	th := DefaultSSD(NewMem())
	if th.WriteBytesPerSec != 2<<30 || th.OpLatency != 7*time.Microsecond {
		t.Errorf("DefaultSSD envelope = %+v", th)
	}
	// Small writes should be fast (latency-bound, not bandwidth-bound).
	start := time.Now()
	for i := 0; i < 10; i++ {
		th.Append("log", Record{Epoch: uint64(i), Payload: []byte{1}})
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("10 tiny appends took %v", elapsed)
	}
}

func TestCompressedDevice(t *testing.T) {
	deviceContract(t, NewCompressed(NewMem()))
}

func TestCompressedShrinksRepetitiveData(t *testing.T) {
	inner := NewMem()
	c := NewCompressed(inner)
	payload := bytes.Repeat([]byte("transactional stream processing "), 256)
	if err := c.Append("log", Record{Epoch: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if got := inner.BytesWritten()["log"]; got >= int64(len(payload)) {
		t.Errorf("compressed write stored %d bytes of %d raw", got, len(payload))
	}
	if r := c.Ratio(); r >= 0.5 {
		t.Errorf("compression ratio %.2f; repetitive data should halve at least", r)
	}
	recs, err := c.ReadLog("log")
	if err != nil || len(recs) != 1 || !bytes.Equal(recs[0].Payload, payload) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestCompressedStoresIncompressibleRaw(t *testing.T) {
	c := NewCompressed(NewMem())
	payload := make([]byte, 512)
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)
	if err := c.WriteBlob("b", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.ReadBlob("b")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("incompressible blob round trip failed: %v", err)
	}
	if r := c.Ratio(); r > 1.01 {
		t.Errorf("ratio %.3f; raw fallback must cap inflation at one tag byte", r)
	}
}

func TestFaultyDevice(t *testing.T) {
	f := NewFaulty(NewMem(), 2)
	if err := f.Append("log", Record{Epoch: 1, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBlob("b", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if f.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", f.Remaining())
	}
	if err := f.Append("log", Record{Epoch: 2, Payload: []byte{3}}); err != ErrInjected {
		t.Errorf("expected injected fault, got %v", err)
	}
	if err := f.Truncate("log", 1); err != ErrInjected {
		t.Errorf("truncate should fail too, got %v", err)
	}
	// Reads keep working.
	recs, err := f.ReadLog("log")
	if err != nil || len(recs) != 1 {
		t.Fatalf("reads must survive: %v, %v", recs, err)
	}
}
