package storage

import (
	"strings"
	"testing"
)

func TestStackCanonicalOrderBuilds(t *testing.T) {
	fence := NewFence(NewMem())
	st := NewStack(NewMem()).
		WithTrace().
		WithFlaky().
		WithCompression().
		WithSSD().
		WithFence(fence).
		WithRetry(RetryPolicy{})
	dev, err := st.Build()
	if err != nil {
		t.Fatalf("canonical order rejected: %v", err)
	}
	if dev == nil {
		t.Fatal("nil device from Build")
	}
	if st.Trace == nil || st.Flaky == nil || st.Retrying == nil {
		t.Fatalf("handles not published: trace=%v flaky=%v retrying=%v",
			st.Trace, st.Flaky, st.Retrying)
	}
	// The assembled stack must behave as a device end to end.
	if err := dev.Append(LogInput, Record{Epoch: 1, Payload: []byte("hello")}); err != nil {
		t.Fatalf("append through full stack: %v", err)
	}
	recs, err := dev.ReadLog(LogInput)
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "hello" {
		t.Fatalf("read back through full stack: recs=%v err=%v", recs, err)
	}
	if got := len(st.Trace.Sites()); got != 1 {
		t.Fatalf("trace saw %d sites, want 1", got)
	}
}

func TestStackRejectsIllegalOrder(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Stack
	}{
		{"retry below fence", func() *Stack {
			return NewStack(NewMem()).WithRetry(RetryPolicy{}).WithFence(NewFence(NewMem()))
		}},
		{"compression above throttle", func() *Stack {
			return NewStack(NewMem()).WithSSD().WithCompression()
		}},
		{"injector above compression", func() *Stack {
			return NewStack(NewMem()).WithCompression().WithFlaky()
		}},
		{"trace above injector", func() *Stack {
			return NewStack(NewMem()).WithFaulty(3, FailStop, "").WithTrace()
		}},
		{"duplicate injector", func() *Stack {
			return NewStack(NewMem()).WithFlaky().WithFaulty(1, FailStop, "")
		}},
		{"duplicate retry", func() *Stack {
			return NewStack(NewMem()).WithRetry(RetryPolicy{}).WithRetry(RetryPolicy{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build().Build(); err == nil {
				t.Fatal("illegal wrapper order accepted")
			} else if !strings.Contains(err.Error(), "illegal wrapper order") {
				t.Fatalf("unexpected error text: %v", err)
			}
		})
	}
}

func TestStackFirstErrorWins(t *testing.T) {
	// Once the order is violated, later (legal-looking) layers must not
	// mask the error.
	st := NewStack(NewMem()).WithSSD().WithCompression().WithRetry(RetryPolicy{})
	if _, err := st.Build(); err == nil || !strings.Contains(err.Error(), "Compressed must wrap") {
		t.Fatalf("want the first ordering error, got %v", err)
	}
}

func TestStackSkipsAlreadyWrappedBase(t *testing.T) {
	// A base device that is already compressed (a caller handed core.New a
	// pre-built device) must not be double-wrapped.
	pre := NewCompressed(NewMem())
	dev, err := NewStack(pre).WithCompression().Build()
	if err != nil {
		t.Fatalf("re-compressing guard errored: %v", err)
	}
	if dev != Device(pre) {
		t.Fatalf("already-compressed base was re-wrapped: %T", dev)
	}

	ssd := DefaultSSD(NewMem())
	dev, err = NewStack(ssd).WithSSD().Build()
	if err != nil {
		t.Fatalf("re-throttling guard errored: %v", err)
	}
	if dev != Device(ssd) {
		t.Fatalf("already-throttled base was re-wrapped: %T", dev)
	}
}

func TestStackFenceAndRetryCompose(t *testing.T) {
	// Retry must sit outside the fence: after the fence advances, the
	// fenced view's writes fail with ErrFenced, which is fatal (never
	// retried) — so the write surfaces immediately instead of burning the
	// backoff budget.
	fence := NewFence(NewMem())
	st := NewStack(NewMem()).WithFence(fence).WithRetry(RetryPolicy{MaxAttempts: 4})
	dev, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Append(LogInput, Record{Epoch: 1}); err != nil {
		t.Fatalf("pre-advance write: %v", err)
	}
	fence.Advance()
	err = dev.Append(LogInput, Record{Epoch: 2})
	if err == nil {
		t.Fatal("fenced write succeeded")
	}
	if got := st.Retrying.Stats().Retries; got != 0 {
		t.Fatalf("fenced write was retried %d times; ErrFenced must be fatal", got)
	}
}
