package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openFDs counts this process's open file descriptors via /proc/self/fd.
// Skips the calling test on platforms without procfs.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// swapOpenFile installs a fault-injecting openFile seam for one test.
func swapOpenFile(t *testing.T, fn func(string, int, os.FileMode) (*os.File, error)) {
	t.Helper()
	orig := openFile
	openFile = fn
	t.Cleanup(func() { openFile = orig })
}

// TestFileNoLeakOnFailedWrites verifies the cleanup-path contract: after a
// failed append, blob write, or truncate, every handle the device opened
// has been closed again. Failures are injected by handing out /dev/full
// handles — real descriptors whose writes fail with ENOSPC — so a leaked
// handle shows up as fd-count drift.
func TestFileNoLeakOnFailedWrites(t *testing.T) {
	dir := t.TempDir()
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skipf("no /dev/full: %v", err)
	}
	swapOpenFile(t, func(string, int, os.FileMode) (*os.File, error) {
		return os.OpenFile("/dev/full", os.O_WRONLY, 0)
	})

	dev, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	before := openFDs(t)
	for i := 0; i < 10; i++ {
		if err := dev.Append("log", Record{Epoch: 1, Payload: []byte("payload")}); err == nil {
			t.Fatal("append to /dev/full succeeded")
		}
		if err := dev.WriteBlob("snap", []byte("payload")); err == nil {
			t.Fatal("blob write to /dev/full succeeded")
		}
	}
	if after := openFDs(t); after != before {
		t.Fatalf("fd leak: %d open before failed writes, %d after", before, after)
	}
	if len(dev.logs) != 0 {
		t.Fatalf("failed append left %d cached handles", len(dev.logs))
	}
}

// TestFileCloseErrorsPropagate drives the error-join paths with handles
// that are already closed, so every Write/Sync/Close on them fails; the
// surfaced error must keep os.ErrClosed matchable through the chain.
func TestFileCloseErrorsPropagate(t *testing.T) {
	dir := t.TempDir()
	swapOpenFile(t, func(name string, flag int, perm os.FileMode) (*os.File, error) {
		fh, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		fh.Close()
		return fh, nil
	})

	dev, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	if err := dev.Append("log", Record{Epoch: 1, Payload: []byte("a")}); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("append: %v", err)
	}
	if len(dev.logs) != 0 {
		t.Fatalf("failed append left %d cached handles", len(dev.logs))
	}
	if err := dev.WriteBlob("snap", []byte("a")); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("blob: %v", err)
	}
	// The failed blob's temp file was removed, not left behind.
	if _, err := os.Stat(filepath.Join(dir, "blob-snap.bin.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp blob left behind: %v", err)
	}
}

// TestFileAppendRollsBackPartialFrame verifies that a failed append leaves
// the log exactly as it was: readable, with no torn frame at the tail.
func TestFileAppendRollsBackPartialFrame(t *testing.T) {
	dir := t.TempDir()
	dev, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Append("log", Record{Epoch: 1, Payload: []byte("good")}); err != nil {
		t.Fatal(err)
	}

	// Swap the cached handle for one where the payload write will fail
	// mid-frame: a read-only descriptor on the same file. The header and
	// payload writes both fail, and rollback truncates to the pre-write
	// size — which is a no-op here since nothing landed, but the handle
	// must be dropped and the log must stay parseable.
	ro, err := os.Open(dev.logPath("log"))
	if err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	if fh, ok := dev.logs["log"]; ok {
		fh.Close()
	}
	dev.logs["log"] = ro
	dev.mu.Unlock()

	if err := dev.Append("log", Record{Epoch: 2, Payload: []byte("bad")}); err == nil {
		t.Fatal("append through read-only handle succeeded")
	}
	recs, err := dev.ReadLog("log")
	if err != nil {
		t.Fatalf("log unparseable after failed append: %v", err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "good" {
		t.Fatalf("log contents after rollback: %+v", recs)
	}
	// The device recovered in place: the next append reopens and works.
	if err := dev.Append("log", Record{Epoch: 2, Payload: []byte("again")}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	recs, _ = dev.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("log has %d records, want 2", len(recs))
	}
}
