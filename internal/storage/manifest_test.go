package storage

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestManifestRoundTrip: every field class survives encode/decode.
func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Kind:  "ingest",
		Epoch: 42,
		Entries: []ManifestEntry{
			{Name: "tenant-a", Vals: []uint64{1, 2, 3}},
			{Name: "tenant-b", Vals: nil},
		},
		Payload: []byte("opaque body"),
	}
	m.SetField("next_seq", 99)
	m.SetField("alpha", 7)

	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "ingest" || got.Epoch != 42 {
		t.Fatalf("header = %q/%d", got.Kind, got.Epoch)
	}
	if got.Field("next_seq") != 99 || got.Field("alpha") != 7 {
		t.Fatalf("fields = %v", got.Fields)
	}
	if !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatalf("entries = %+v", got.Entries)
	}
	if string(got.Payload) != "opaque body" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

// TestManifestEmpty: the zero manifest round-trips.
func TestManifestEmpty(t *testing.T) {
	m := &Manifest{}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "" || got.Epoch != 0 || len(got.Fields) != 0 ||
		len(got.Entries) != 0 || len(got.Payload) != 0 {
		t.Fatalf("zero manifest = %+v", got)
	}
}

// TestManifestDeterministic: field-map iteration order must not leak into
// the bytes — the byte-determinism harness pins manifest encodings.
func TestManifestDeterministic(t *testing.T) {
	build := func() []byte {
		m := &Manifest{Kind: "delivery", Epoch: 7}
		for _, name := range []string{"z", "a", "m", "q", "b"} {
			m.SetField(name, uint64(len(name)))
		}
		return m.Encode()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(first, build()) {
			t.Fatal("encoding depends on map order")
		}
	}
}

// TestManifestKindCheck: a blob written by one layer cannot be misread by
// another.
func TestManifestKindCheck(t *testing.T) {
	m := &Manifest{Kind: "ingest-wm", Epoch: 3}
	if _, err := DecodeManifestKind(m.Encode(), "ingest-wm"); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifestKind(m.Encode(), "delivery"); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("kind mismatch = %v", err)
	}
}

// TestManifestRejectsCorruption: truncations, bit flips, and trailing
// garbage all surface ErrBadManifest — never a panic or a silent misparse.
func TestManifestRejectsCorruption(t *testing.T) {
	m := &Manifest{Kind: "ingest", Epoch: 9,
		Entries: []ManifestEntry{{Name: "t", Vals: []uint64{1, 2}}},
		Payload: []byte("body")}
	m.SetField("f", 5)
	good := m.Encode()

	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeManifest(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeManifest(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := DecodeManifest(bad); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad magic = %v", err)
	}
}

// FuzzDecodeManifest hammers the one decoder every recovery layer now
// shares: any input must either decode to a manifest that re-encodes
// losslessly or fail with ErrBadManifest — no panics, no allocations
// proportional to claimed (not actual) sizes.
func FuzzDecodeManifest(f *testing.F) {
	seed := &Manifest{Kind: "ingest", Epoch: 42,
		Entries: []ManifestEntry{{Name: "tenant", Vals: []uint64{1, 9}}},
		Payload: []byte("events")}
	seed.SetField("next_seq", 7)
	f.Add(seed.Encode())
	f.Add((&Manifest{}).Encode())
	f.Add([]byte("MSM1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("decode error not ErrBadManifest: %v", err)
			}
			return
		}
		// Accepted input must round-trip through the canonical encoding.
		again, err := DecodeManifest(m.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != m.Kind || again.Epoch != m.Epoch ||
			!reflect.DeepEqual(again.Fields, m.Fields) ||
			!reflect.DeepEqual(again.Entries, m.Entries) ||
			!bytes.Equal(again.Payload, m.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", m, again)
		}
	})
}
