package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSegmentBudget is returned by Append when a log would need more live
// segments than the configured ring allows. It is the store's backpressure
// signal: the writer outran garbage collection, so a covering checkpoint
// must commit (and release segments) before more records can land.
var ErrSegmentBudget = errors.New("storage: segment ring full")

// SegConfig shapes a SegStore.
type SegConfig struct {
	// SegmentBytes caps each segment's payload bytes; a record larger than
	// the cap gets a private oversized segment. Zero means 64 KiB.
	SegmentBytes int
	// MaxSegments bounds the live (unreleased) segments per log; appends
	// needing a segment beyond the bound fail with ErrSegmentBudget. Zero
	// means unbounded — the footprint is then bounded by checkpoint
	// cadence alone.
	MaxSegments int
	// Compact rewrites segments that straddle the release horizon down to
	// their live suffix inline on each release (MSR view logs keep only a
	// committed suffix live, so straddlers are where dead bytes hide).
	Compact bool
}

// SegStore is the bounded segment store: each log is a ring of fixed-size
// segments, sealed segments carry an index entry giving O(log n) seek by
// epoch, and garbage collection reclaims whole segments for reuse instead
// of rewriting bytes (the ts-store design: circular data blocks plus a
// searchable block index). It is in-memory like Mem — the crash model
// keeps the device and discards the engine — and sits at the bottom of the
// wrapper stack.
//
// Epoch order caveat: logs are not strictly epoch-monotone (a recovered
// incarnation re-appends coordinator epochs at or below earlier records),
// so a segment's index entry stores seekHi, the prefix-maximum of segment
// hi epochs. seekHi is monotone by construction, which makes binary search
// valid; it can only overestimate, so a seek lands at or before the first
// wanted record and the cursor's record-level epoch filter does the rest.
type SegStore struct {
	mu    sync.Mutex
	cfg   SegConfig
	logs  map[string]*segLog
	blobs map[string][]byte
	bytes map[string]int64
	free  [][]byte
	seq   uint64
	// hook is the crash-point test seam: it fires between the index update
	// and the segment-slab reuse of a release ("release-index" then
	// "segment-reuse"), and after a seal ("seal"). Nil outside tests.
	hook func(event, log string)
}

type segment struct {
	seq    uint64
	lo, hi uint64 // min/max record epoch in the segment
	seekHi uint64 // prefix-max of hi over the index through this segment
	n      int
	buf    []byte
	// pins counts open cursors holding the segment; a released segment's
	// slab recycles only at zero, so a reader never observes reused bytes.
	pins atomic.Int32
}

type segLog struct {
	sealed []*segment
	active *segment
	// floor is the exact-read watermark (Truncate semantics): records with
	// epoch <= floor are dead to every reader.
	floor uint64
	// relMark is the release covenant: callers declared epochs <= relMark
	// covered by a checkpoint, so compaction may drop them even though
	// conservative retention keeps some readable until then.
	relMark  uint64
	released int
}

// NewSegStore creates an empty segment store.
func NewSegStore(cfg SegConfig) *SegStore {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 64 << 10
	}
	return &SegStore{
		cfg:   cfg,
		logs:  make(map[string]*segLog),
		blobs: make(map[string][]byte),
		bytes: make(map[string]int64),
	}
}

func (s *SegStore) fire(event, log string) {
	if s.hook != nil {
		s.hook(event, log)
	}
}

// SetHook installs the crash-point test seam (see SegStore.hook).
func (s *SegStore) SetHook(h func(event, log string)) {
	s.mu.Lock()
	s.hook = h
	s.mu.Unlock()
}

func (s *SegStore) log(name string) *segLog {
	lg := s.logs[name]
	if lg == nil {
		lg = &segLog{}
		s.logs[name] = lg
	}
	return lg
}

// slab returns a buffer of at least capacity need, reusing a released
// segment's slab when one fits (reclamation, not truncation).
func (s *SegStore) slab(need int) []byte {
	for i := len(s.free) - 1; i >= 0; i-- {
		if cap(s.free[i]) >= need {
			b := s.free[i][:0]
			s.free = append(s.free[:i], s.free[i+1:]...)
			return b
		}
	}
	if need < s.cfg.SegmentBytes {
		need = s.cfg.SegmentBytes
	}
	return make([]byte, 0, need)
}

// seal closes the active segment and appends its index entry.
func (s *SegStore) seal(name string, lg *segLog) {
	sg := lg.active
	if sg == nil || sg.n == 0 {
		return
	}
	sg.seekHi = sg.hi
	if n := len(lg.sealed); n > 0 && lg.sealed[n-1].seekHi > sg.seekHi {
		sg.seekHi = lg.sealed[n-1].seekHi
	}
	lg.sealed = append(lg.sealed, sg)
	lg.active = nil
	s.fire("seal", name)
}

// live counts the log's unreleased segments, active included.
func (lg *segLog) live() int {
	n := len(lg.sealed)
	if lg.active != nil {
		n++
	}
	return n
}

// Append implements Device. The record is framed as uvarint epoch +
// uvarint length + payload into the active segment, sealing it first when
// the frame does not fit.
func (s *SegStore) Append(name string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.log(name)
	frame := binary.MaxVarintLen64*2 + len(rec.Payload)
	if sg := lg.active; sg != nil && len(sg.buf)+frame > s.cfg.SegmentBytes && sg.n > 0 {
		s.seal(name, lg)
	}
	if lg.active == nil {
		if s.cfg.MaxSegments > 0 && lg.live() >= s.cfg.MaxSegments {
			return fmt.Errorf("%w: log %q at %d segments", ErrSegmentBudget, name, lg.live())
		}
		s.seq++
		lg.active = &segment{seq: s.seq, buf: s.slab(frame)}
	}
	sg := lg.active
	sg.buf = binary.AppendUvarint(sg.buf, rec.Epoch)
	sg.buf = binary.AppendUvarint(sg.buf, uint64(len(rec.Payload)))
	sg.buf = append(sg.buf, rec.Payload...)
	if sg.n == 0 || rec.Epoch < sg.lo {
		sg.lo = rec.Epoch
	}
	if rec.Epoch > sg.hi {
		sg.hi = rec.Epoch
	}
	sg.n++
	s.bytes[name] += int64(len(rec.Payload))
	return nil
}

// seek returns the index of the first sealed segment that can hold a
// record with epoch > from: binary search on the monotone seekHi.
func seek(sealed []*segment, from uint64) int {
	lo, hi := 0, len(sealed)
	for lo < hi {
		mid := (lo + hi) / 2
		if sealed[mid].seekHi > from {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ReadFrom implements LogReader: O(log n) seek over the sealed index, then
// record-at-a-time iteration with the epoch filter.
func (s *SegStore) ReadFrom(name string, fromEpoch uint64) (Cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.logs[name]
	if lg == nil {
		return NewSliceCursor(nil, 0), nil
	}
	from := fromEpoch
	if lg.floor > from {
		from = lg.floor
	}
	var segs []*segment
	var bufs [][]byte
	for _, sg := range lg.sealed[seek(lg.sealed, from):] {
		sg.pins.Add(1)
		segs = append(segs, sg)
		bufs = append(bufs, sg.buf)
	}
	if sg := lg.active; sg != nil && sg.n > 0 {
		// The active segment keeps growing; snapshot the slice header under
		// the lock — appends only ever write past this view's length, and
		// the pin keeps the backing array off the freelist.
		sg.pins.Add(1)
		segs = append(segs, sg)
		bufs = append(bufs, sg.buf)
	}
	return &segCursor{segs: segs, bufs: bufs, from: from}, nil
}

// ReadLog implements Device as a shim over the cursor.
func (s *SegStore) ReadLog(name string) ([]Record, error) {
	cur, err := s.ReadFrom(name, 0)
	if err != nil {
		return nil, err
	}
	return ReadAll(cur)
}

// segCursor iterates pinned segments record by record over slice headers
// snapshotted at creation, copying each payload out (callers retain
// records; segment slabs recycle once unpinned).
type segCursor struct {
	segs []*segment
	bufs [][]byte // views captured under the store lock at creation
	from uint64
	pos  int
	off  int

	closed bool
}

func (c *segCursor) Next() (Record, bool, error) {
	for c.pos < len(c.bufs) {
		buf := c.bufs[c.pos]
		if c.off >= len(buf) {
			c.pos++
			c.off = 0
			continue
		}
		ep, _, payload, next, err := frameAt(buf, c.off)
		if err != nil {
			return Record{}, false, err
		}
		c.off = next
		if ep > c.from {
			return Record{Epoch: ep, Payload: append([]byte(nil), payload...)}, true, nil
		}
	}
	return Record{}, false, nil
}

func (c *segCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, sg := range c.segs {
		sg.pins.Add(-1)
	}
	return nil
}

// WriteBlob implements Device.
func (s *SegStore) WriteBlob(name string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[name] = append([]byte(nil), payload...)
	s.bytes[name] += int64(len(payload))
	return nil
}

// ReadBlob implements Device.
func (s *SegStore) ReadBlob(name string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[name]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), b...), true, nil
}

// Truncate implements Device with exact semantics: records with epoch <=
// upTo become unreadable immediately (the floor), and fully covered head
// segments are reclaimed through the same release path GC uses.
func (s *SegStore) Truncate(name string, upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.log(name)
	if upTo > lg.floor {
		lg.floor = upTo
	}
	s.release(name, lg, upTo)
	return nil
}

// ReleaseThrough implements Releaser: segment-granular reclamation without
// the exact-read floor — records at or below upTo in a straddling segment
// stay conservatively readable until compaction rewrites it.
func (s *SegStore) ReleaseThrough(name string, upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.log(name)
	s.release(name, lg, upTo)
	return nil
}

// release is the single segment-release path (Truncate and ReleaseThrough
// both land here): pop fully covered segments off the index head, then
// recycle their slabs. The index update happens strictly before any slab
// reuse, and the hook seam lets the crash sweep stop between the two.
func (s *SegStore) release(name string, lg *segLog, upTo uint64) {
	if upTo > lg.relMark {
		lg.relMark = upTo
	}
	var freed []*segment
	for len(lg.sealed) > 0 && lg.sealed[0].hi <= upTo {
		freed = append(freed, lg.sealed[0])
		lg.sealed = lg.sealed[1:]
		lg.released++
	}
	if len(freed) > 0 {
		s.fire("release-index", name)
		for _, sg := range freed {
			if sg.pins.Load() == 0 {
				// No cursor holds the segment: its slab recycles. A pinned
				// segment keeps its bytes until the cursor closes (the GC
				// reclaims the slab; it just skips the freelist).
				s.free = append(s.free, sg.buf)
				sg.buf = nil
				s.fire("segment-reuse", name)
			}
		}
	}
	if s.cfg.Compact {
		s.compact(lg)
	}
}

// CompactNow rewrites the named log's straddling segments down to their
// live suffix (records above the release covenant). Returns how many
// segments were rewritten.
func (s *SegStore) CompactNow(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.logs[name]
	if lg == nil {
		return 0
	}
	return s.compact(lg)
}

// compact rewrites sealed segments straddling relMark. Replaced segments
// are fresh objects, so concurrent cursors pinning the old ones keep a
// consistent view; old slabs recycle when unpinned.
func (s *SegStore) compact(lg *segLog) int {
	n := 0
	for i, sg := range lg.sealed {
		if sg.lo > lg.relMark || sg.hi <= lg.relMark || sg.n == 0 {
			continue
		}
		ns := &segment{seq: sg.seq, buf: s.slab(len(sg.buf))}
		for off := 0; off < len(sg.buf); {
			ep, ln, payload, next, err := frameAt(sg.buf, off)
			if err != nil {
				ns = nil // never happens for self-written frames; keep as-is
				break
			}
			_ = ln
			if ep > lg.relMark {
				ns.buf = binary.AppendUvarint(ns.buf, ep)
				ns.buf = binary.AppendUvarint(ns.buf, uint64(len(payload)))
				ns.buf = append(ns.buf, payload...)
				if ns.n == 0 || ep < ns.lo {
					ns.lo = ep
				}
				if ep > ns.hi {
					ns.hi = ep
				}
				ns.n++
			}
			off = next
		}
		if ns == nil {
			continue
		}
		if sg.pins.Load() == 0 {
			s.free = append(s.free, sg.buf)
		}
		lg.sealed[i] = ns
		n++
	}
	if n > 0 {
		// seekHi is a prefix max; rebuild it after the rewrites.
		prev := uint64(0)
		for _, sg := range lg.sealed {
			if sg.hi > prev {
				prev = sg.hi
			}
			sg.seekHi = prev
		}
	}
	return n
}

// StartCompactor runs background compaction over every log at the given
// interval, returning a stop function. Deterministic harnesses call
// CompactNow instead; the serving path uses this.
func (s *SegStore) StartCompactor(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.mu.Lock()
				for _, lg := range s.logs {
					s.compact(lg)
				}
				s.mu.Unlock()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// BytesWritten implements Device.
func (s *SegStore) BytesWritten() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.bytes))
	for k, v := range s.bytes {
		out[k] = v
	}
	return out
}

// Segments returns the named log's live segment count (active included).
func (s *SegStore) Segments(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.logs[name]
	if lg == nil {
		return 0
	}
	return lg.live()
}

// Released returns how many of the named log's segments have been
// reclaimed so far.
func (s *SegStore) Released(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lg := s.logs[name]
	if lg == nil {
		return 0
	}
	return lg.released
}

// frameAt decodes one record frame at off, returning the epoch, payload
// length, the payload view, and the next frame's offset.
func frameAt(buf []byte, off int) (ep, ln uint64, payload []byte, next int, err error) {
	ep, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("storage: segment frame: bad epoch at %d", off)
	}
	off += n
	ln, n = binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0, nil, 0, fmt.Errorf("storage: segment frame: bad length at %d", off)
	}
	off += n
	if uint64(len(buf)-off) < ln {
		return 0, 0, nil, 0, fmt.Errorf("storage: segment frame: length %d overruns segment", ln)
	}
	return ep, ln, buf[off : off+int(ln)], off + int(ln), nil
}
