package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultyFailStop(t *testing.T) {
	inner := NewMem()
	f := NewFaulty(inner, 2)
	if err := f.Append("log", Record{Epoch: 1, Payload: []byte("aa")}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBlob("snap", []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if f.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", f.Remaining())
	}
	if err := f.Append("log", Record{Epoch: 2, Payload: []byte("cc")}); !errors.Is(err, ErrInjected) {
		t.Fatalf("past-budget append: %v", err)
	}
	// Nothing of the failed write reaches the medium.
	recs, _ := inner.ReadLog("log")
	if len(recs) != 1 {
		t.Fatalf("fail-stop persisted %d records, want 1", len(recs))
	}
	site, ok := f.Injected()
	if !ok || site.Op != "append" || site.Name != "log" || site.Epoch != 2 || site.Seq != 2 {
		t.Fatalf("injected site = %+v ok=%v", site, ok)
	}
	// Reads keep working after death.
	if _, err := f.ReadLog("log"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyTornWrite(t *testing.T) {
	inner := NewMem()
	f := NewFaultyMode(inner, 1, TornWrite, "")
	if err := f.Append("log", Record{Epoch: 1, Payload: []byte("full")}); err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	if err := f.Append("log", Record{Epoch: 2, Payload: payload}); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append: %v", err)
	}
	recs, _ := inner.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("torn write persisted %d records, want 2 (intact + torn)", len(recs))
	}
	torn := recs[1]
	if torn.Epoch != 2 || len(torn.Payload) >= len(payload) || !bytes.HasPrefix(payload, torn.Payload) {
		t.Fatalf("torn record = epoch %d payload %q; want strict prefix of %q", torn.Epoch, torn.Payload, payload)
	}
	// Only the first failing write tears; later writes fail-stop.
	if err := f.Append("log", Record{Epoch: 3, Payload: []byte("late")}); !errors.Is(err, ErrInjected) {
		t.Fatal("dead device accepted a write")
	}
	recs, _ = inner.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("post-death write persisted: %d records", len(recs))
	}
}

func TestFaultyTornBlobStaysAtomic(t *testing.T) {
	inner := NewMem()
	f := NewFaultyMode(inner, 1, TornWrite, "")
	if err := f.WriteBlob("snap", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBlob("snap", []byte("newer-and-longer")); !errors.Is(err, ErrInjected) {
		t.Fatal("past-budget blob write succeeded")
	}
	b, ok, _ := inner.ReadBlob("snap")
	if !ok || string(b) != "old" {
		t.Fatalf("blob after torn write = %q ok=%v; atomic replace must keep the old blob", b, ok)
	}
}

func TestFaultyDroppedTail(t *testing.T) {
	inner := NewMem()
	f := NewFaultyMode(inner, 0, DroppedTail, "")
	if err := f.Append("log", Record{Epoch: 7, Payload: []byte("payload")}); !errors.Is(err, ErrInjected) {
		t.Fatal("injection missing")
	}
	recs, _ := inner.ReadLog("log")
	if len(recs) != 1 || recs[0].Epoch != 7 || len(recs[0].Payload) != 0 {
		t.Fatalf("dropped-tail record = %+v; want epoch 7 with empty payload", recs)
	}
}

func TestFaultyPerLogTargeting(t *testing.T) {
	inner := NewMem()
	f := NewFaultyMode(inner, 1, FailStop, "ft")
	// Non-target writes never count and never fail.
	for i := 0; i < 5; i++ {
		if err := f.Append("input", Record{Epoch: uint64(i), Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Append("ft", Record{Epoch: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("ft", Record{Epoch: 2, Payload: []byte("x")}); !errors.Is(err, ErrInjected) {
		t.Fatalf("second ft write: %v", err)
	}
	// The target died, the rest of the device keeps working.
	if err := f.Append("input", Record{Epoch: 9, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteBlob("snapshot", nil); err != nil {
		t.Fatal(err)
	}
	site, ok := f.Injected()
	if !ok || site.Name != "ft" || site.Seq != 1 {
		t.Fatalf("site = %+v ok=%v; Seq must count target writes only", site, ok)
	}
}

func TestTraceEnumeratesWrites(t *testing.T) {
	inner := NewMem()
	tr := NewTrace(inner)
	if err := tr.Append("input", Record{Epoch: 1, Payload: []byte("ev")}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBlob("snapshot", []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Truncate("input", 1); err != nil {
		t.Fatal(err)
	}
	sites := tr.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	want := []WriteSite{
		{Seq: 0, Op: "append", Name: "input", Epoch: 1, Bytes: 2},
		{Seq: 1, Op: "blob", Name: "snapshot", Bytes: 4},
		{Seq: 2, Op: "truncate", Name: "input", Epoch: 1},
	}
	for i, s := range sites {
		if s != want[i] {
			t.Errorf("site %d = %+v, want %+v", i, s, want[i])
		}
		if s.String() == "" {
			t.Errorf("site %d has empty String()", i)
		}
	}
	// The trace forwards: the medium has the writes.
	recs, _ := inner.ReadLog("input")
	if len(recs) != 0 { // truncated
		t.Fatalf("trace did not forward truncate: %d records", len(recs))
	}
}

// TestFaultyTraceAgreement: a Faulty with target "" counts writes exactly
// the way a Trace enumerates them, so budget k dies at Sites()[k].
func TestFaultyTraceAgreement(t *testing.T) {
	run := func(dev Device) {
		dev.Append("a", Record{Epoch: 1, Payload: []byte("x")})
		dev.WriteBlob("b", []byte("y"))
		dev.Append("a", Record{Epoch: 2, Payload: []byte("z")})
		dev.Truncate("a", 1)
	}
	tr := NewTrace(NewMem())
	run(tr)
	sites := tr.Sites()
	for k := range sites {
		f := NewFaulty(NewMem(), k)
		run(f)
		got, ok := f.Injected()
		if !ok || got != sites[k] {
			t.Fatalf("budget %d died at %+v, trace says %+v", k, got, sites[k])
		}
	}
}
