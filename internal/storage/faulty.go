package storage

import (
	"errors"
	"sync"
)

// ErrInjected is returned by a Faulty device once its budget is exhausted.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Device and starts failing every write operation after a
// configured number of successful ones — a deterministic stand-in for a
// dying disk. Reads keep working (the medium's existing content remains
// legible), which matches the failure mode recovery cares about: writes
// that stop landing.
//
// It exists for tests: every engine and mechanism write path must surface
// the error instead of silently diverging state from the log.
type Faulty struct {
	Inner Device

	mu     sync.Mutex
	budget int
}

// NewFaulty allows budget successful writes before injecting failures.
func NewFaulty(inner Device, budget int) *Faulty {
	return &Faulty{Inner: inner, budget: budget}
}

func (f *Faulty) spend() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 {
		return ErrInjected
	}
	f.budget--
	return nil
}

// Remaining returns the writes left before failure.
func (f *Faulty) Remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.budget
}

// Append implements Device.
func (f *Faulty) Append(log string, rec Record) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Inner.Append(log, rec)
}

// WriteBlob implements Device.
func (f *Faulty) WriteBlob(name string, payload []byte) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Inner.WriteBlob(name, payload)
}

// Truncate implements Device; garbage collection is a write too.
func (f *Faulty) Truncate(log string, upTo uint64) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Inner.Truncate(log, upTo)
}

// ReadLog implements Device.
func (f *Faulty) ReadLog(log string) ([]Record, error) { return f.Inner.ReadLog(log) }

// ReadBlob implements Device.
func (f *Faulty) ReadBlob(name string) ([]byte, bool, error) { return f.Inner.ReadBlob(name) }

// BytesWritten implements Device.
func (f *Faulty) BytesWritten() map[string]int64 { return f.Inner.BytesWritten() }
