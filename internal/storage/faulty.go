package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is returned by a Faulty device once its budget is exhausted.
var ErrInjected = errors.New("storage: injected fault")

// FaultMode selects what happens to the first write past a Faulty device's
// budget. All modes return ErrInjected to the caller — the write never
// acknowledges — but they differ in what the medium retains, which is what
// recovery has to cope with.
type FaultMode uint8

const (
	// FailStop persists nothing: the write vanishes entirely, like a
	// controller that died before touching the medium.
	FailStop FaultMode = iota
	// TornWrite persists a strict prefix of an appended record's payload
	// before dying, leaving a torn tail record for recovery to detect and
	// discard. Blob writes and truncations stay atomic (the write-to-temp-
	// then-rename idiom of the File device cannot tear), so they fail-stop.
	TornWrite
	// DroppedTail persists an appended record's frame with its payload
	// lost (a zero-byte tail record) — the volatile-cache-drop flavour of
	// a torn write. Blob writes and truncations fail-stop as in TornWrite.
	DroppedTail
)

// String returns the mode name used in harness reports.
func (m FaultMode) String() string {
	switch m {
	case FailStop:
		return "fail-stop"
	case TornWrite:
		return "torn-write"
	case DroppedTail:
		return "dropped-tail"
	default:
		return fmt.Sprintf("FaultMode(%d)", uint8(m))
	}
}

// WriteSite identifies one durable write the engine issued: its position in
// the device's write sequence and what it was writing. The crash-point
// sweep enumerates sites with a Trace device, then replays the workload
// once per site with a Faulty device dying there.
type WriteSite struct {
	// Seq is the 0-based index of the write in the device's write order
	// (counting only writes the wrapper observed).
	Seq int
	// Op is the write kind: "append", "blob", "truncate", or "release"
	// (segment-granular GC through the Releaser path).
	Op string
	// Name is the log or blob written.
	Name string
	// Epoch is the record epoch for appends, or the truncation watermark.
	// Zero for blobs.
	Epoch uint64
	// Bytes is the payload size for appends and blob writes.
	Bytes int
}

// String renders the site the way sweep failure reports print it.
func (s WriteSite) String() string {
	switch s.Op {
	case "truncate":
		return fmt.Sprintf("write %d: truncate[%s] upTo=%d", s.Seq, s.Name, s.Epoch)
	case "release":
		return fmt.Sprintf("write %d: release[%s] upTo=%d", s.Seq, s.Name, s.Epoch)
	case "blob":
		return fmt.Sprintf("write %d: blob[%s] (%dB)", s.Seq, s.Name, s.Bytes)
	default:
		return fmt.Sprintf("write %d: append[%s] epoch=%d (%dB)", s.Seq, s.Name, s.Epoch, s.Bytes)
	}
}

// Faulty wraps a Device and starts failing write operations after a
// configured number of successful ones — a deterministic stand-in for a
// dying disk. Reads keep working (the medium's existing content remains
// legible), which matches the failure mode recovery cares about: writes
// that stop landing.
//
// The fault mode decides what the first failing write leaves behind
// (nothing, a torn prefix, or an empty record frame); every later matching
// write fails with ErrInjected and persists nothing. A non-empty target
// restricts both budget counting and injection to writes touching that log
// or blob name; writes elsewhere always succeed, which lets tests aim a
// fault at one log (say, the FT log's third group commit) while the rest of
// the engine's write traffic proceeds.
//
// It exists for tests: every engine and mechanism write path must surface
// the error instead of silently diverging state from the log.
type Faulty struct {
	Inner Device

	mu       sync.Mutex
	budget   int
	mode     FaultMode
	target   string
	seen     int
	injected *WriteSite
}

// NewFaulty allows budget successful writes before injecting fail-stop
// failures on every write.
func NewFaulty(inner Device, budget int) *Faulty {
	return NewFaultyMode(inner, budget, FailStop, "")
}

// NewFaultyMode allows budget successful writes to target (every write when
// target is empty), then injects one failure of the given mode; subsequent
// matching writes fail-stop.
func NewFaultyMode(inner Device, budget int, mode FaultMode, target string) *Faulty {
	return &Faulty{Inner: inner, budget: budget, mode: mode, target: target}
}

// spend consumes budget for one write to name. It returns inject=false
// while the write should pass through; when the budget is exhausted it
// records the site and returns inject=true with first=true exactly once
// (the write that gets the mode-specific treatment).
func (f *Faulty) spend(site WriteSite) (inject, first bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.target != "" && site.Name != f.target {
		return false, false
	}
	site.Seq = f.seen
	f.seen++
	if f.budget > 0 {
		f.budget--
		return false, false
	}
	if f.injected == nil {
		f.injected = &site
		return true, true
	}
	return true, false
}

// Remaining returns the writes left before failure.
func (f *Faulty) Remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.budget
}

// Injected reports the site at which the device died, if it has.
func (f *Faulty) Injected() (WriteSite, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.injected == nil {
		return WriteSite{}, false
	}
	return *f.injected, true
}

// Append implements Device.
func (f *Faulty) Append(log string, rec Record) error {
	inject, first := f.spend(WriteSite{Op: "append", Name: log, Epoch: rec.Epoch, Bytes: len(rec.Payload)})
	if !inject {
		return f.Inner.Append(log, rec)
	}
	if first {
		switch f.mode {
		case TornWrite:
			// A strict prefix of the payload reaches the medium before
			// the device dies. The record frame (epoch) survives — it is
			// written first — but the payload is cut mid-way, so decoders
			// must reject it rather than misparse.
			torn := Record{Epoch: rec.Epoch, Payload: rec.Payload[:len(rec.Payload)/2]}
			if err := f.Inner.Append(log, torn); err != nil {
				return err
			}
		case DroppedTail:
			// The frame lands, the payload is lost in the device cache.
			if err := f.Inner.Append(log, Record{Epoch: rec.Epoch}); err != nil {
				return err
			}
		}
	}
	return ErrInjected
}

// WriteBlob implements Device. Blob replacement is atomic
// (write-temp-then-rename), so every fault mode degenerates to fail-stop:
// the old blob survives intact.
func (f *Faulty) WriteBlob(name string, payload []byte) error {
	if inject, _ := f.spend(WriteSite{Op: "blob", Name: name, Bytes: len(payload)}); inject {
		return ErrInjected
	}
	return f.Inner.WriteBlob(name, payload)
}

// Truncate implements Device; garbage collection is a write too. Log
// truncation rewrites into a temp file and renames, so it too fail-stops
// under every mode: either the whole prefix is dropped or none of it.
func (f *Faulty) Truncate(log string, upTo uint64) error {
	if inject, _ := f.spend(WriteSite{Op: "truncate", Name: log, Epoch: upTo}); inject {
		return ErrInjected
	}
	return f.Inner.Truncate(log, upTo)
}

// ReleaseThrough implements Releaser. Segment release updates the index
// before touching any slab (the SegStore contract), so like truncation it
// is atomic under every fault mode: it fail-stops.
func (f *Faulty) ReleaseThrough(log string, epoch uint64) error {
	if inject, _ := f.spend(WriteSite{Op: "release", Name: log, Epoch: epoch}); inject {
		return ErrInjected
	}
	return Release(f.Inner, log, epoch)
}

// ReadFrom implements LogReader; reads keep working on a dead device.
func (f *Faulty) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	return ReadFrom(f.Inner, log, fromEpoch)
}

// ReadLog implements Device.
func (f *Faulty) ReadLog(log string) ([]Record, error) { return f.Inner.ReadLog(log) }

// ReadBlob implements Device.
func (f *Faulty) ReadBlob(name string) ([]byte, bool, error) { return f.Inner.ReadBlob(name) }

// BytesWritten implements Device.
func (f *Faulty) BytesWritten() map[string]int64 { return f.Inner.BytesWritten() }
