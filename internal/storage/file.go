package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// openFile is a test seam for fault injection (e.g. handing back /dev/full
// or an already-closed handle to exercise cleanup paths).
var openFile = os.OpenFile

// File is a directory-backed Device. Each log is one append-only file of
// length-prefixed framed records; each blob is one file replaced via the
// write-to-temp-then-rename idiom so that a crash never exposes a torn
// blob. Appends are followed by fsync, honouring the synchronous-durability
// contract of the Device interface.
type File struct {
	dir string

	mu    sync.Mutex
	logs  map[string]*os.File
	bytes map[string]int64
}

// NewFile opens (creating if needed) a device rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create device dir: %w", err)
	}
	return &File{dir: dir, logs: make(map[string]*os.File), bytes: make(map[string]int64)}, nil
}

// Close releases all open log files.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, fh := range f.logs {
		if err := fh.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.logs = make(map[string]*os.File)
	return first
}

func (f *File) logPath(log string) string {
	return filepath.Join(f.dir, "log-"+sanitize(log)+".bin")
}

func (f *File) blobPath(name string) string {
	return filepath.Join(f.dir, "blob-"+sanitize(name)+".bin")
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func (f *File) openLogLocked(log string) (*os.File, error) {
	if fh, ok := f.logs[log]; ok {
		return fh, nil
	}
	fh, err := openFile(f.logPath(log), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log %q: %w", log, err)
	}
	f.logs[log] = fh
	return fh, nil
}

// Append implements Device. Record framing: 8-byte big-endian epoch,
// 4-byte big-endian length, payload.
//
// A failed append leaves no partial frame behind: the file is truncated
// back to its pre-write length and the cached handle is dropped, so an
// in-process retry (or a healed incarnation reusing the directory) starts
// from a clean log tail rather than a torn header.
func (f *File) Append(log string, rec Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fh, err := f.openLogLocked(log)
	if err != nil {
		return err
	}
	var size int64 = -1
	if st, err := fh.Stat(); err == nil {
		size = st.Size()
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], rec.Epoch)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(rec.Payload)))
	if _, err := fh.Write(hdr[:]); err != nil {
		return f.undoAppendLocked(log, fh, size, fmt.Errorf("storage: append %q: %w", log, err))
	}
	if _, err := fh.Write(rec.Payload); err != nil {
		return f.undoAppendLocked(log, fh, size, fmt.Errorf("storage: append %q: %w", log, err))
	}
	if err := fh.Sync(); err != nil {
		return f.undoAppendLocked(log, fh, size, fmt.Errorf("storage: sync %q: %w", log, err))
	}
	f.bytes[log] += int64(len(rec.Payload))
	return nil
}

// undoAppendLocked rolls a failed append back to the pre-write file size,
// closes the handle, and drops it from the cache so the next append
// reopens fresh. The original write error always comes first in the join;
// rollback problems are appended rather than swallowed.
func (f *File) undoAppendLocked(log string, fh *os.File, size int64, werr error) error {
	if size >= 0 {
		if terr := fh.Truncate(size); terr != nil {
			werr = errors.Join(werr, fmt.Errorf("storage: rollback %q: %w", log, terr))
		}
	}
	if cerr := fh.Close(); cerr != nil {
		werr = errors.Join(werr, fmt.Errorf("storage: close %q: %w", log, cerr))
	}
	delete(f.logs, log)
	return werr
}

// ReadLog implements Device.
func (f *File) ReadLog(log string) ([]Record, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, err := os.ReadFile(f.logPath(log))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: read log %q: %w", log, err)
	}
	return parseLog(log, b)
}

func parseLog(log string, b []byte) ([]Record, error) {
	var out []Record
	for off := 0; off < len(b); {
		if off+12 > len(b) {
			return nil, fmt.Errorf("storage: log %q: truncated header at %d", log, off)
		}
		epoch := binary.BigEndian.Uint64(b[off : off+8])
		n := int(binary.BigEndian.Uint32(b[off+8 : off+12]))
		off += 12
		if off+n > len(b) {
			return nil, fmt.Errorf("storage: log %q: truncated payload at %d", log, off)
		}
		out = append(out, Record{Epoch: epoch, Payload: append([]byte(nil), b[off:off+n]...)})
		off += n
	}
	return out, nil
}

// WriteBlob implements Device via write-temp-fsync-rename.
func (f *File) WriteBlob(name string, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dst := f.blobPath(name)
	tmp := dst + ".tmp"
	fh, err := openFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: write blob %q: %w", name, err)
	}
	if _, err := fh.Write(payload); err != nil {
		return dropTemp(tmp, fh, fmt.Errorf("storage: write blob %q: %w", name, err))
	}
	if err := fh.Sync(); err != nil {
		return dropTemp(tmp, fh, fmt.Errorf("storage: sync blob %q: %w", name, err))
	}
	if err := fh.Close(); err != nil {
		return dropTemp(tmp, nil, fmt.Errorf("storage: close blob %q: %w", name, err))
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("storage: commit blob %q: %w", name, err)
	}
	f.bytes[name] += int64(len(payload))
	return nil
}

// dropTemp abandons a failed temp-file write: the handle (if still open)
// is closed with its error propagated, and the temp file is removed
// best-effort — it was never renamed into place, so leaving it behind is a
// disk leak, not a correctness hazard.
func dropTemp(tmp string, fh *os.File, werr error) error {
	if fh != nil {
		if cerr := fh.Close(); cerr != nil {
			werr = errors.Join(werr, fmt.Errorf("storage: close %q: %w", tmp, cerr))
		}
	}
	os.Remove(tmp)
	return werr
}

// ReadBlob implements Device.
func (f *File) ReadBlob(name string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, err := os.ReadFile(f.blobPath(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("storage: read blob %q: %w", name, err)
	}
	return b, true, nil
}

// Truncate implements Device by rewriting the log without the dropped
// prefix and atomically swapping it in.
func (f *File) Truncate(log string, upTo uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.logPath(log)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: truncate %q: %w", log, err)
	}
	recs, err := parseLog(log, b)
	if err != nil {
		return err
	}
	// Close the open append handle: we are about to replace the file.
	if fh, ok := f.logs[log]; ok {
		delete(f.logs, log)
		if cerr := fh.Close(); cerr != nil {
			return fmt.Errorf("storage: truncate %q: close append handle: %w", log, cerr)
		}
	}
	tmp := path + ".tmp"
	fh, err := openFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: truncate %q: %w", log, err)
	}
	for _, rec := range recs {
		if rec.Epoch <= upTo {
			continue
		}
		var hdr [12]byte
		binary.BigEndian.PutUint64(hdr[0:8], rec.Epoch)
		binary.BigEndian.PutUint32(hdr[8:12], uint32(len(rec.Payload)))
		if _, err := fh.Write(hdr[:]); err != nil {
			return dropTemp(tmp, fh, fmt.Errorf("storage: truncate %q: %w", log, err))
		}
		if _, err := fh.Write(rec.Payload); err != nil {
			return dropTemp(tmp, fh, fmt.Errorf("storage: truncate %q: %w", log, err))
		}
	}
	if err := fh.Sync(); err != nil {
		return dropTemp(tmp, fh, fmt.Errorf("storage: truncate %q: %w", log, err))
	}
	if err := fh.Close(); err != nil {
		return dropTemp(tmp, nil, fmt.Errorf("storage: truncate %q: %w", log, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: truncate %q: %w", log, err)
	}
	return nil
}

// BytesWritten implements Device.
func (f *File) BytesWritten() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.bytes))
	for k, v := range f.bytes {
		out[k] = v
	}
	return out
}

var _ io.Closer = (*File)(nil)
