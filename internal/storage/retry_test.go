package storage

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives RetryPolicy.Now/Sleep without real waiting.
type fakeClock struct {
	now    time.Time
	sleeps []time.Duration
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

func newTestRetrying(inner Device, pol RetryPolicy) (*Retrying, *fakeClock) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	pol.Sleep = clk.Sleep
	pol.Now = clk.Now
	return NewRetrying(inner, pol), clk
}

func TestRetryingAbsorbsStorm(t *testing.T) {
	mem := NewMem()
	flaky := NewFlaky(mem)
	flaky.AddStorm(1, 3) // writes 1..3 fail transiently
	r, clk := newTestRetrying(flaky, RetryPolicy{MaxAttempts: 6})

	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	// Write 1 is the first attempt of the second op; retries 2..4 consume
	// the storm window and attempt 4 (arrival 4) succeeds.
	if err := r.Append("log", Record{Epoch: 2, Payload: []byte("b")}); err != nil {
		t.Fatalf("storm not absorbed: %v", err)
	}
	st := r.Stats()
	if st.Absorbed != 1 || st.Retries != 3 || st.Exhausted != 0 || st.Fatal != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(clk.sleeps) != 3 {
		t.Fatalf("sleeps = %d, want 3", len(clk.sleeps))
	}
	recs, _ := mem.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("medium has %d records, want 2", len(recs))
	}
}

func TestRetryingBackoffDoublesWithJitter(t *testing.T) {
	mem := NewMem()
	flaky := NewFlaky(mem)
	flaky.AddStorm(0, 4)
	base := 1 * time.Millisecond
	r, clk := newTestRetrying(flaky, RetryPolicy{MaxAttempts: 6, BaseBackoff: base, MaxBackoff: 100 * time.Millisecond})
	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	want := base
	for i, d := range clk.sleeps {
		lo, hi := want/2, want+want/2
		if d < lo || d >= hi {
			t.Fatalf("sleep %d = %v outside jitter band [%v, %v)", i, d, lo, hi)
		}
		want *= 2
	}
}

func TestRetryingFatalPassesThrough(t *testing.T) {
	mem := NewMem()
	faulty := NewFaulty(mem, 0) // first write fails fatally
	r, clk := newTestRetrying(faulty, RetryPolicy{})
	err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if errors.Is(err, ErrRetryExhausted) || errors.Is(err, ErrTransient) {
		t.Fatalf("fatal error misclassified: %v", err)
	}
	if len(clk.sleeps) != 0 {
		t.Fatalf("fatal error slept %d times", len(clk.sleeps))
	}
	if st := r.Stats(); st.Fatal != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryingExhaustsAttempts(t *testing.T) {
	mem := NewMem()
	flaky := NewFlaky(mem)
	flaky.AddStorm(0, 100)
	var seen []int
	r, clk := newTestRetrying(flaky, RetryPolicy{
		MaxAttempts: 4,
		OnRetry:     func(op string, attempt int, err error) { seen = append(seen, attempt) },
	})
	err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("want ErrRetryExhausted, got %v", err)
	}
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted error lost its cause chain: %v", err)
	}
	if len(seen) != 4 {
		t.Fatalf("OnRetry saw %d attempts, want 4", len(seen))
	}
	if len(clk.sleeps) != 3 { // no sleep after the final attempt
		t.Fatalf("sleeps = %d, want 3", len(clk.sleeps))
	}
	if st := r.Stats(); st.Exhausted != 1 || st.Retries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryingDeadlineCutsAttemptsShort(t *testing.T) {
	mem := NewMem()
	flaky := NewFlaky(mem)
	flaky.AddStorm(0, 100)
	r, _ := newTestRetrying(flaky, RetryPolicy{
		MaxAttempts: 100,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		OpDeadline:  25 * time.Millisecond,
	})
	err := r.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("want ErrRetryExhausted, got %v", err)
	}
	if st := r.Stats(); st.Retries >= 10 {
		t.Fatalf("deadline did not bound retries: %+v", st)
	}
}

func TestRetryingCircuitBreaker(t *testing.T) {
	mem := NewMem()
	flaky := NewFlaky(mem)
	flaky.AddStorm(0, 1000)
	cooldown := 1 * time.Second
	r, clk := newTestRetrying(flaky, RetryPolicy{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  cooldown,
	})

	// Three consecutive exhausted ops open the breaker.
	for i := 0; i < 3; i++ {
		if err := r.Append("log", Record{Epoch: 1, Payload: []byte("x")}); !errors.Is(err, ErrRetryExhausted) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if st := r.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.BreakerOpens)
	}

	// While cooling down, ops fail fast without touching the device.
	before := flaky.Writes()
	err := r.Append("log", Record{Epoch: 1, Payload: []byte("x")})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("fast-fail lost the last device error: %v", err)
	}
	if flaky.Writes() != before {
		t.Fatal("fast-fail touched the device")
	}

	// Past cooldown: half-open probe. Still failing → exhausted again, and
	// the breaker re-opens immediately (consec already past threshold).
	clk.now = clk.now.Add(cooldown)
	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("x")}); !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("half-open probe: %v", err)
	}
	if err := r.Append("log", Record{Epoch: 1, Payload: []byte("x")}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker did not re-open after failed probe: %v", err)
	}

	// Past cooldown with a healed device: probe succeeds and closes the
	// breaker; subsequent ops run normally.
	clk.now = clk.now.Add(cooldown)
	flaky2 := NewFlaky(mem)
	r.Inner = flaky2
	if err := r.Append("log", Record{Epoch: 2, Payload: []byte("y")}); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if err := r.Append("log", Record{Epoch: 3, Payload: []byte("z")}); err != nil {
		t.Fatalf("post-close op: %v", err)
	}
	st := r.Stats()
	if st.FastFails != 2 {
		t.Fatalf("fast fails = %d, want 2", st.FastFails)
	}
}

func TestRetryingReadsRetryToo(t *testing.T) {
	mem := NewMem()
	if err := mem.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	r, _ := newTestRetrying(&transientReadDevice{Device: mem, failures: 2}, RetryPolicy{})
	recs, err := r.ReadLog("log")
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if st := r.Stats(); st.Absorbed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// transientReadDevice fails the first N reads transiently.
type transientReadDevice struct {
	Device
	failures int
}

func (d *transientReadDevice) ReadLog(log string) ([]Record, error) {
	if d.failures > 0 {
		d.failures--
		return nil, Transient(errors.New("read glitch"))
	}
	return d.Device.ReadLog(log)
}

func TestTransientNilAndChain(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	err := Transient(ErrInjected)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("chain broken: %v", err)
	}
}
