package storage

import (
	"errors"
	"testing"
	"time"
)

func TestFlakyStormWindow(t *testing.T) {
	mem := NewMem()
	f := NewFlaky(mem)
	f.AddStorm(1, 2) // writes 1 and 2 fail transiently

	if err := f.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	for i := 0; i < 2; i++ {
		err := f.Append("log", Record{Epoch: 2, Payload: []byte("b")})
		if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
			t.Fatalf("storm write %d: %v", i, err)
		}
	}
	if err := f.Append("log", Record{Epoch: 2, Payload: []byte("b")}); err != nil {
		t.Fatalf("post-storm write: %v", err)
	}
	if f.Writes() != 4 || f.Injected() != 2 {
		t.Fatalf("writes=%d injected=%d", f.Writes(), f.Injected())
	}
	if _, ok := f.FirstInjectionAt(); !ok {
		t.Fatal("no first-injection timestamp")
	}
	recs, _ := mem.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("medium has %d records, want 2", len(recs))
	}
}

func TestFlakyOutageIsFatal(t *testing.T) {
	f := NewFlaky(NewMem())
	f.AddOutage(0, 1)
	err := f.WriteBlob("snap", []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Fatalf("outage misclassified transient: %v", err)
	}
}

func TestFlakyFatalOverridesTransient(t *testing.T) {
	f := NewFlaky(NewMem())
	f.AddStorm(0, 1)
	f.AddOutage(0, 1) // overlapping windows: fatal wins
	err := f.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	if errors.Is(err, ErrTransient) {
		t.Fatalf("overlap resolved transient: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestFlakyLatencySpike(t *testing.T) {
	f := NewFlaky(NewMem())
	var slept []time.Duration
	f.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	f.AddLatency(1, 1, 7*time.Millisecond)

	if err := f.Truncate("log", 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
	if f.Injected() != 0 {
		t.Fatalf("latency counted as injection: %d", f.Injected())
	}
}

func TestFlakyReadsAlwaysPass(t *testing.T) {
	mem := NewMem()
	if err := mem.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	f := NewFlaky(mem)
	f.AddStorm(0, 100)
	recs, err := f.ReadLog("log")
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if _, _, err := f.ReadBlob("missing"); err != nil {
		t.Fatal(err)
	}
	if f.Writes() != 0 {
		t.Fatalf("reads consumed write arrivals: %d", f.Writes())
	}
}
