package storage

import "testing"

// TestSliceCursorFilters: the fallback cursor yields exactly the records
// with Epoch > fromEpoch, preserving append order.
func TestSliceCursorFilters(t *testing.T) {
	recs := []Record{{Epoch: 1}, {Epoch: 3}, {Epoch: 2}, {Epoch: 5}}
	cur := NewSliceCursor(recs, 2)
	out, err := ReadAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Epoch != 3 || out[1].Epoch != 5 {
		t.Fatalf("filtered = %+v", out)
	}
}

// TestReadFromFallback: a plain Device without LogReader still serves
// cursors through the package helper, with identical record contents.
func TestReadFromFallback(t *testing.T) {
	dev := NewMem()
	for ep := uint64(1); ep <= 5; ep++ {
		dev.Append("log", Record{Epoch: ep, Payload: []byte{byte(ep)}})
	}
	cur, err := ReadFrom(dev, "log", 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(cur)
	if err != nil || len(out) != 3 || out[0].Epoch != 3 {
		t.Fatalf("fallback cursor: %+v, %v", out, err)
	}
}

// TestReleaseFallback: Release on a non-Releaser device truncates exactly.
func TestReleaseFallback(t *testing.T) {
	dev := NewMem()
	for ep := uint64(1); ep <= 4; ep++ {
		dev.Append("log", Record{Epoch: ep})
	}
	if err := Release(dev, "log", 2); err != nil {
		t.Fatal(err)
	}
	recs, _ := dev.ReadLog("log")
	if len(recs) != 2 || recs[0].Epoch != 3 {
		t.Fatalf("fallback release: %+v", recs)
	}
}

// TestReadAllClosesOnError: an erroring cursor is still closed.
func TestReadAllClosesOnError(t *testing.T) {
	ec := &errCursor{}
	if _, err := ReadAll(ec); err == nil {
		t.Fatal("expected error")
	}
	if !ec.closed {
		t.Fatal("cursor not closed on error")
	}
}

type errCursor struct{ closed bool }

func (c *errCursor) Next() (Record, bool, error) {
	return Record{}, false, ErrInjected
}
func (c *errCursor) Close() error { c.closed = true; return nil }

// TestCursorThroughCompression: records stream decompressed one at a time.
func TestCursorThroughCompression(t *testing.T) {
	dev := NewCompressed(NewSegStore(SegConfig{SegmentBytes: 64}))
	payload := []byte("abcabcabcabcabcabcabcabcabcabc")
	for ep := uint64(1); ep <= 6; ep++ {
		if err := dev.Append("log", Record{Epoch: ep, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := ReadFrom(dev, "log", 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(cur)
	if err != nil || len(out) != 3 {
		t.Fatalf("compressed cursor: %d recs, %v", len(out), err)
	}
	for _, rec := range out {
		if string(rec.Payload) != string(payload) {
			t.Fatalf("payload corrupted: %q", rec.Payload)
		}
	}
}
