package storage

import (
	"errors"
	"reflect"
	"testing"
)

// TestSegIndexRoundTrip: a real store's index encodes and decodes
// losslessly.
func TestSegIndexRoundTrip(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 32})
	for ep := uint64(1); ep <= 10; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	idx := s.Index("log")
	got, err := DecodeSegIndex(EncodeSegIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Fatalf("round trip: %+v vs %+v", got, idx)
	}
}

// TestSegIndexRejectsInvariantViolations: an index that would misroute an
// epoch seek must not decode.
func TestSegIndexRejectsInvariantViolations(t *testing.T) {
	cases := map[string][]SegMeta{
		"lo>hi":          {{Seq: 1, Lo: 5, Hi: 3, SeekHi: 5}},
		"seq not incr":   {{Seq: 2, Lo: 1, Hi: 2, SeekHi: 2}, {Seq: 2, Lo: 3, Hi: 4, SeekHi: 4}},
		"seekHi<hi":      {{Seq: 1, Lo: 1, Hi: 5, SeekHi: 4}},
		"seekHi not max": {{Seq: 1, Lo: 1, Hi: 9, SeekHi: 9}, {Seq: 2, Lo: 2, Hi: 3, SeekHi: 3}},
	}
	for name, metas := range cases {
		if _, err := DecodeSegIndex(EncodeSegIndex(metas)); !errors.Is(err, ErrBadSegIndex) {
			t.Errorf("%s: err = %v, want ErrBadSegIndex", name, err)
		}
	}
}

// FuzzDecodeSegIndex seeds the fuzzer with an index produced by a real
// engine-shaped run (multiple logs, seals, releases) and requires every
// accepted input to satisfy the seek invariants and round-trip.
func FuzzDecodeSegIndex(f *testing.F) {
	s := NewSegStore(SegConfig{SegmentBytes: 48})
	for ep := uint64(1); ep <= 40; ep++ {
		s.Append("ft", Record{Epoch: ep, Payload: []byte("group-commit-payload")})
		if ep%8 == 0 {
			s.ReleaseThrough("ft", ep-8)
		}
	}
	f.Add(EncodeSegIndex(s.Index("ft")))
	f.Add(EncodeSegIndex(nil))
	f.Add([]byte("MSI1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		metas, err := DecodeSegIndex(data)
		if err != nil {
			if !errors.Is(err, ErrBadSegIndex) {
				t.Fatalf("decode error not ErrBadSegIndex: %v", err)
			}
			return
		}
		var prevSeek uint64
		for i, m := range metas {
			if m.Lo > m.Hi || m.SeekHi < m.Hi || m.SeekHi < prevSeek {
				t.Fatalf("accepted invalid entry %d: %+v", i, m)
			}
			prevSeek = m.SeekHi
		}
		again, err := DecodeSegIndex(EncodeSegIndex(metas))
		if err != nil || !reflect.DeepEqual(again, metas) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}
