package storage

import (
	"sync"
	"time"
)

// Throttled wraps a Device and models its performance envelope: a fixed
// per-operation latency (IOPS bound) and a write bandwidth (bytes/second).
// Reads are charged latency plus read bandwidth. It turns the host's
// effectively-free in-memory device into something shaped like the paper's
// Optane SSD, so that "I/O overhead is still the major bottleneck"
// (Section VIII-D) reproduces regardless of the machine running the
// benchmarks.
//
// Throttling is implemented by sleeping the calling goroutine, which is the
// right model: the engine's commit path blocks on durability exactly as it
// would block on a real fsync.
type Throttled struct {
	Inner Device
	// OpLatency is charged once per Append/WriteBlob/ReadBlob/ReadLog.
	OpLatency time.Duration
	// WriteBytesPerSec bounds append/blob write bandwidth; 0 = unbounded.
	WriteBytesPerSec float64
	// ReadBytesPerSec bounds log/blob read bandwidth; 0 = unbounded.
	ReadBytesPerSec float64

	mu sync.Mutex // serialises the simulated device channel
}

// DefaultSSD returns a throttle modelling the paper's Intel Optane SSD:
// 2 GB/s write bandwidth and 146k IOPS (~7 µs per operation). Reads are
// modelled at the same bandwidth.
func DefaultSSD(inner Device) *Throttled {
	return &Throttled{
		Inner:            inner,
		OpLatency:        7 * time.Microsecond,
		WriteBytesPerSec: 2 << 30,
		ReadBytesPerSec:  2 << 30,
	}
}

func (t *Throttled) charge(n int64, bps float64) {
	d := t.OpLatency
	if bps > 0 && n > 0 {
		d += time.Duration(float64(n) / bps * float64(time.Second))
	}
	if d <= 0 {
		return
	}
	// Serialise: one device, one channel. Concurrent committers queue.
	t.mu.Lock()
	defer t.mu.Unlock()
	// time.Sleep oversleeps short waits by up to a millisecond on many
	// kernels, which would swamp the microsecond-scale charges a fast SSD
	// produces; spin for short charges, sleep only for long ones.
	if d < time.Millisecond {
		for start := time.Now(); time.Since(start) < d; {
			// busy wait
		}
		return
	}
	time.Sleep(d)
}

// Append implements Device.
func (t *Throttled) Append(log string, rec Record) error {
	t.charge(int64(len(rec.Payload)), t.WriteBytesPerSec)
	return t.Inner.Append(log, rec)
}

// ReadLog implements Device.
func (t *Throttled) ReadLog(log string) ([]Record, error) {
	recs, err := t.Inner.ReadLog(log)
	var n int64
	for _, r := range recs {
		n += int64(len(r.Payload))
	}
	t.charge(n, t.ReadBytesPerSec)
	return recs, err
}

// WriteBlob implements Device.
func (t *Throttled) WriteBlob(name string, payload []byte) error {
	t.charge(int64(len(payload)), t.WriteBytesPerSec)
	return t.Inner.WriteBlob(name, payload)
}

// ReadBlob implements Device.
func (t *Throttled) ReadBlob(name string) ([]byte, bool, error) {
	b, ok, err := t.Inner.ReadBlob(name)
	t.charge(int64(len(b)), t.ReadBytesPerSec)
	return b, ok, err
}

// Truncate implements Device; garbage collection is off the critical path,
// so only the operation latency is charged.
func (t *Throttled) Truncate(log string, upTo uint64) error {
	t.charge(0, 0)
	return t.Inner.Truncate(log, upTo)
}

// ReleaseThrough implements Releaser; like Truncate, it charges only the
// operation latency — segment reclamation moves no bytes.
func (t *Throttled) ReleaseThrough(log string, epoch uint64) error {
	t.charge(0, 0)
	return Release(t.Inner, log, epoch)
}

// ReadFrom implements LogReader: each record is charged as it streams, so
// a seek that skips most of the log is charged for what it reads, not for
// the run length — the device-side benefit of the segment index.
func (t *Throttled) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	t.charge(0, 0)
	cur, err := ReadFrom(t.Inner, log, fromEpoch)
	if err != nil {
		return nil, err
	}
	return &throttledCursor{inner: cur, t: t}, nil
}

type throttledCursor struct {
	inner Cursor
	t     *Throttled
}

func (c *throttledCursor) Next() (Record, bool, error) {
	rec, ok, err := c.inner.Next()
	if ok {
		c.t.charge(int64(len(rec.Payload)), c.t.ReadBytesPerSec)
	}
	return rec, ok, err
}

func (c *throttledCursor) Close() error { return c.inner.Close() }

// BytesWritten implements Device.
func (t *Throttled) BytesWritten() map[string]int64 { return t.Inner.BytesWritten() }
