package storage

import (
	"errors"
	"sync"
	"testing"
)

func TestFenceStaleWritesRejected(t *testing.T) {
	mem := NewMem()
	fence := NewFence(mem)
	v1 := fence.View(fence.Generation())

	if err := v1.Append("log", Record{Epoch: 1, Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	gen2 := fence.Advance()
	v2 := fence.View(gen2)

	err := v1.Append("log", Record{Epoch: 2, Payload: []byte("zombie")})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale append: %v", err)
	}
	if err := v1.WriteBlob("snap", []byte("zombie")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale blob: %v", err)
	}
	if err := v1.Truncate("log", 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale truncate: %v", err)
	}
	// Stale reads still pass.
	if recs, err := v1.ReadLog("log"); err != nil || len(recs) != 1 {
		t.Fatalf("stale read: recs=%d err=%v", len(recs), err)
	}

	if err := v2.Append("log", Record{Epoch: 2, Payload: []byte("live")}); err != nil {
		t.Fatal(err)
	}
	recs, _ := mem.ReadLog("log")
	if len(recs) != 2 {
		t.Fatalf("medium has %d records, want 2", len(recs))
	}
}

// TestFenceAdvanceDrainsInFlight checks that a write cannot straddle the
// fence: a guarded write that began before Advance completes before
// Advance returns, so the device is quiescent when recovery starts.
func TestFenceAdvanceDrainsInFlight(t *testing.T) {
	inner := &gateDevice{Device: NewMem(), entered: make(chan struct{}), release: make(chan struct{})}
	fence := NewFence(inner)
	v1 := fence.View(fence.Generation())

	writeDone := make(chan error, 1)
	go func() {
		writeDone <- v1.Append("log", Record{Epoch: 1, Payload: []byte("a")})
	}()
	<-inner.entered // write is inside the device, holding the fence read lock

	advanced := make(chan struct{})
	go func() {
		fence.Advance()
		close(advanced)
	}()
	select {
	case <-advanced:
		t.Fatal("Advance returned while a write was in flight")
	default:
	}
	close(inner.release)
	<-advanced
	if err := <-writeDone; err != nil {
		t.Fatalf("pre-fence write failed: %v", err)
	}
	// The drained write landed; later stale writes do not.
	if err := v1.Append("log", Record{Epoch: 2, Payload: []byte("b")}); !errors.Is(err, ErrFenced) {
		t.Fatalf("post-advance write: %v", err)
	}
}

// gateDevice blocks the first Append until released, signalling entry.
type gateDevice struct {
	Device
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (g *gateDevice) Append(log string, rec Record) error {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.Device.Append(log, rec)
}

func TestFenceConcurrentGenerations(t *testing.T) {
	fence := NewFence(NewMem())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		v := fence.View(fence.Generation())
		wg.Add(1)
		go func(v Device, gen int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = v.Append("log", Record{Epoch: uint64(gen), Payload: []byte{byte(i)}})
			}
		}(v, g)
		fence.Advance()
	}
	wg.Wait()
}
