package storage

// Cursor streams one log's records in append order, record at a time.
// Recovery paths read through cursors so replay memory is bounded by one
// record, not one log: the old whole-log ReadLog slurp made recovery cost
// proportional to run length even when a checkpoint covered almost all of
// it. Next returns ok=false once the log is exhausted; Close releases any
// segment pins the cursor holds and is idempotent.
type Cursor interface {
	// Next returns the next record with Epoch > the cursor's fromEpoch.
	// ok=false means exhaustion (err stays nil); a non-nil error is a read
	// failure and ends the iteration.
	Next() (rec Record, ok bool, err error)
	// Close releases the cursor's resources. Safe to call more than once.
	Close() error
}

// LogReader is implemented by devices (and wrappers) that can seek a log
// by epoch instead of materialising it. The SegStore implements it with an
// O(log n) binary search over its sealed-segment index; wrappers forward
// it so the capability survives the stack.
type LogReader interface {
	// ReadFrom returns a cursor over the records of log with Epoch >
	// fromEpoch, in append order. fromEpoch 0 reads the whole log.
	ReadFrom(log string, fromEpoch uint64) (Cursor, error)
}

// Releaser is implemented by devices with segment-granular garbage
// collection: ReleaseThrough reclaims whole storage segments fully covered
// by epoch without rewriting bytes, and may conservatively retain records
// at or below epoch (callers read through epoch-filtered cursors, so
// retained dead records are invisible). Truncate remains the exact-
// semantics fallback for devices without segments.
type Releaser interface {
	// ReleaseThrough reclaims storage fully covered by epoch. Unlike
	// Truncate it is allowed to retain records with Epoch <= epoch.
	ReleaseThrough(log string, epoch uint64) error
}

// ReadFrom returns a streaming cursor over log's records with Epoch >
// fromEpoch. Devices implementing LogReader seek natively; for the rest
// the cursor is a filtered view over one ReadLog call — same records,
// same order, so call sites migrate without a semantics change.
func ReadFrom(dev Device, log string, fromEpoch uint64) (Cursor, error) {
	if lr, ok := dev.(LogReader); ok {
		return lr.ReadFrom(log, fromEpoch)
	}
	recs, err := dev.ReadLog(log)
	if err != nil {
		return nil, err
	}
	return NewSliceCursor(recs, fromEpoch), nil
}

// Release routes one garbage-collection request through the single
// segment-release path: devices with segment-granular reclamation
// (Releaser) reclaim whole segments, everything else truncates exactly.
// All GC call sites — checkpoint commit, MSR view GC, the serving layer's
// manifest GC — go through here, so no caller can strand a segment by
// byte-truncating a segmented log or double-free one by mixing paths.
func Release(dev Device, log string, upTo uint64) error {
	if r, ok := dev.(Releaser); ok {
		return r.ReleaseThrough(log, upTo)
	}
	return dev.Truncate(log, upTo)
}

// NewSliceCursor wraps an already-materialised record slice as a Cursor
// filtering to Epoch > fromEpoch. It backs the ReadFrom fallback and lets
// slice-shaped tests drive cursor-based decoders.
func NewSliceCursor(recs []Record, fromEpoch uint64) Cursor {
	return &sliceCursor{recs: recs, from: fromEpoch}
}

type sliceCursor struct {
	recs []Record
	from uint64
	pos  int
}

func (c *sliceCursor) Next() (Record, bool, error) {
	for c.pos < len(c.recs) {
		rec := c.recs[c.pos]
		c.pos++
		if rec.Epoch > c.from {
			return rec, true, nil
		}
	}
	return Record{}, false, nil
}

func (c *sliceCursor) Close() error { return nil }

// ReadAll drains a cursor into a slice and closes it — the shim ReadLog
// implementations and tests use it; production recovery paths iterate.
func ReadAll(c Cursor) ([]Record, error) {
	defer c.Close()
	var out []Record
	for {
		rec, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}
