package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrBadManifest tags every Manifest decode failure.
var ErrBadManifest = errors.New("storage: bad manifest")

// manifestMagic opens every encoded manifest; manifestVersion is bumped on
// incompatible layout changes (decoders reject unknown versions instead of
// misparsing).
const (
	manifestMagic   = "MSM1"
	manifestVersion = 1
	// maxManifestName caps decoded name lengths, bounding allocation
	// against corrupt or fuzzed inputs.
	maxManifestName = 256
)

// Manifest is the one versioned, self-describing codec for recovery
// metadata. It replaces the hand-rolled encodings that every layer grew
// separately — the engine's delivery watermark (BlobMeta), the serving
// layer's ingest watermark blob and ingest-record header — so every
// incarnation reads one format with one fuzzed decoder.
//
// Kind names the producing layer ("delivery", "ingest-wm", "ingest", ...);
// decoders check it, so a blob written by one layer can never be misread
// by another. Fields carry named scalars, Entries carry named vectors
// (e.g. one entry per tenant), and Payload carries an opaque trailing body
// whose format belongs to the producer (e.g. the encoded event batch of an
// ingest record).
type Manifest struct {
	Kind    string
	Epoch   uint64
	Fields  map[string]uint64
	Entries []ManifestEntry
	Payload []byte
}

// ManifestEntry is one named vector of a Manifest.
type ManifestEntry struct {
	Name string
	Vals []uint64
}

// Field returns the named scalar (zero when absent).
func (m *Manifest) Field(name string) uint64 { return m.Fields[name] }

// SetField sets a named scalar, allocating the map on first use.
func (m *Manifest) SetField(name string, v uint64) {
	if m.Fields == nil {
		m.Fields = make(map[string]uint64)
	}
	m.Fields[name] = v
}

// Encode serialises the manifest. Field names are sorted so the encoding
// is deterministic — byte-level pinning tests rely on it.
func (m *Manifest) Encode() []byte {
	b := make([]byte, 0, 64+len(m.Payload))
	b = append(b, manifestMagic...)
	b = binary.AppendUvarint(b, manifestVersion)
	b = appendName(b, m.Kind)
	b = binary.AppendUvarint(b, m.Epoch)
	names := make([]string, 0, len(m.Fields))
	for name := range m.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = appendName(b, name)
		b = binary.AppendUvarint(b, m.Fields[name])
	}
	b = binary.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = appendName(b, e.Name)
		b = binary.AppendUvarint(b, uint64(len(e.Vals)))
		for _, v := range e.Vals {
			b = binary.AppendUvarint(b, v)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(m.Payload)))
	b = append(b, m.Payload...)
	return b
}

func appendName(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeManifest parses an encoded manifest, validating every count
// against the remaining input before allocating.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manifestMagic) || string(b[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadManifest)
	}
	d := manifestReader{b: b[len(manifestMagic):]}
	if v := d.uvarint(); d.err == nil && v != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, v)
	}
	m := &Manifest{}
	m.Kind = d.name()
	m.Epoch = d.uvarint()
	nf := d.uvarint()
	if d.err == nil && nf > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: field count %d", ErrBadManifest, nf)
	}
	for i := uint64(0); i < nf && d.err == nil; i++ {
		name := d.name()
		v := d.uvarint()
		if d.err == nil {
			m.SetField(name, v)
		}
	}
	ne := d.uvarint()
	if d.err == nil && ne > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: entry count %d", ErrBadManifest, ne)
	}
	for i := uint64(0); i < ne && d.err == nil; i++ {
		e := ManifestEntry{Name: d.name()}
		nv := d.uvarint()
		if d.err == nil && nv > uint64(len(d.b)-d.off) {
			return nil, fmt.Errorf("%w: value count %d", ErrBadManifest, nv)
		}
		for j := uint64(0); j < nv && d.err == nil; j++ {
			e.Vals = append(e.Vals, d.uvarint())
		}
		if d.err == nil {
			m.Entries = append(m.Entries, e)
		}
	}
	np := d.uvarint()
	if d.err == nil && np > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadManifest, np)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, d.err)
	}
	if np > 0 {
		m.Payload = append([]byte(nil), d.b[d.off:d.off+int(np)]...)
		d.off += int(np)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, len(d.b)-d.off)
	}
	return m, nil
}

// DecodeManifestKind decodes and checks the manifest's kind in one step —
// the usual consumer call.
func DecodeManifestKind(b []byte, kind string) (*Manifest, error) {
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, err
	}
	if m.Kind != kind {
		return nil, fmt.Errorf("%w: kind %q, want %q", ErrBadManifest, m.Kind, kind)
	}
	return m, nil
}

type manifestReader struct {
	b   []byte
	off int
	err error
}

func (d *manifestReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *manifestReader) name() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxManifestName || n > uint64(len(d.b)-d.off) {
		d.err = fmt.Errorf("name length %d at %d", n, d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
