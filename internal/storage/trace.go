package storage

import "sync"

// Trace wraps a Device and records a WriteSite for every write it forwards,
// in device order. The crash-point sweep runs a workload once against a
// Trace to enumerate every durable write the engine issues, then replays
// the same seeded workload once per site against a Faulty device whose
// budget stops exactly there — so every partial-persistence point the
// engine can produce is exercised.
type Trace struct {
	Inner Device

	mu    sync.Mutex
	sites []WriteSite
}

// NewTrace creates a tracing wrapper around inner.
func NewTrace(inner Device) *Trace { return &Trace{Inner: inner} }

// Sites returns a copy of the recorded write sites in write order.
func (t *Trace) Sites() []WriteSite {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WriteSite, len(t.sites))
	copy(out, t.sites)
	return out
}

func (t *Trace) record(site WriteSite) {
	t.mu.Lock()
	site.Seq = len(t.sites)
	t.sites = append(t.sites, site)
	t.mu.Unlock()
}

// Append implements Device.
func (t *Trace) Append(log string, rec Record) error {
	t.record(WriteSite{Op: "append", Name: log, Epoch: rec.Epoch, Bytes: len(rec.Payload)})
	return t.Inner.Append(log, rec)
}

// WriteBlob implements Device.
func (t *Trace) WriteBlob(name string, payload []byte) error {
	t.record(WriteSite{Op: "blob", Name: name, Bytes: len(payload)})
	return t.Inner.WriteBlob(name, payload)
}

// Truncate implements Device.
func (t *Trace) Truncate(log string, upTo uint64) error {
	t.record(WriteSite{Op: "truncate", Name: log, Epoch: upTo})
	return t.Inner.Truncate(log, upTo)
}

// ReleaseThrough implements Releaser. Segment release is a durable write
// too — it is recorded as its own site kind so the crash sweep dies on it
// like on any truncation.
func (t *Trace) ReleaseThrough(log string, epoch uint64) error {
	t.record(WriteSite{Op: "release", Name: log, Epoch: epoch})
	return Release(t.Inner, log, epoch)
}

// ReadFrom implements LogReader.
func (t *Trace) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	return ReadFrom(t.Inner, log, fromEpoch)
}

// ReadLog implements Device.
func (t *Trace) ReadLog(log string) ([]Record, error) { return t.Inner.ReadLog(log) }

// ReadBlob implements Device.
func (t *Trace) ReadBlob(name string) ([]byte, bool, error) { return t.Inner.ReadBlob(name) }

// BytesWritten implements Device.
func (t *Trace) BytesWritten() map[string]int64 { return t.Inner.BytesWritten() }
