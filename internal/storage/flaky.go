package storage

import (
	"fmt"
	"sync"
	"time"
)

// Flaky wraps a Device and injects scripted fault windows into its write
// traffic: transient error storms (the retry layer should absorb them),
// fatal outages (the supervisor should heal them), and latency spikes (the
// stall watchdog's territory). It complements Faulty, which models a
// device that dies once and stays dead; Flaky models a device that
// misbehaves and comes back — the failure mode end-to-end MTTR studies
// care about.
//
// Writes are counted in arrival order across Append, WriteBlob, and
// Truncate — the same op set Faulty counts — and each scripted window
// [from, from+n) matches against that counter. Retried attempts count as
// new arrivals, so a storm of length n is absorbed by a retry budget of
// n+1 attempts. Reads always succeed: the medium's existing content stays
// legible throughout, which is what lets in-process recovery run against
// the same device that just misbehaved.
type Flaky struct {
	Inner Device

	mu       sync.Mutex
	seen     int
	windows  []faultWindow
	injected int
	firstAt  time.Time
	sleep    func(time.Duration)
}

type faultKind uint8

const (
	faultTransient faultKind = iota
	faultFatal
	faultLatency
)

type faultWindow struct {
	from, n int
	kind    faultKind
	delay   time.Duration
}

// NewFlaky wraps inner with an empty fault script.
func NewFlaky(inner Device) *Flaky {
	return &Flaky{Inner: inner, sleep: time.Sleep}
}

// AddStorm scripts a transient error storm: writes [from, from+n) fail
// with a Transient-classified error.
func (f *Flaky) AddStorm(from, n int) {
	f.add(faultWindow{from: from, n: n, kind: faultTransient})
}

// AddOutage scripts a fatal window: writes [from, from+n) fail with
// ErrInjected, not classified transient — the retry layer surfaces them
// immediately and the supervisor must recover.
func (f *Flaky) AddOutage(from, n int) {
	f.add(faultWindow{from: from, n: n, kind: faultFatal})
}

// AddLatency scripts a latency spike: writes [from, from+n) succeed after
// an extra delay d.
func (f *Flaky) AddLatency(from, n int, d time.Duration) {
	f.add(faultWindow{from: from, n: n, kind: faultLatency, delay: d})
}

func (f *Flaky) add(w faultWindow) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.windows = append(f.windows, w)
}

// SetSleep overrides the latency-spike sleeper (test seam).
func (f *Flaky) SetSleep(sleep func(time.Duration)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleep = sleep
}

// Writes reports how many write operations arrived so far.
func (f *Flaky) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// Injected reports how many write operations were failed by the script.
func (f *Flaky) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// FirstInjectionAt returns the wall-clock instant of the first injected
// failure — the fault-occurrence baseline MTTR measurements subtract
// detection time from.
func (f *Flaky) FirstInjectionAt() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstAt, !f.firstAt.IsZero()
}

// decide consumes one write arrival and returns the injected error (nil to
// pass through) plus any scripted extra latency.
func (f *Flaky) decide() (error, time.Duration) {
	f.mu.Lock()
	seq := f.seen
	f.seen++
	var err error
	var delay time.Duration
	for _, w := range f.windows {
		if seq < w.from || seq >= w.from+w.n {
			continue
		}
		switch w.kind {
		case faultLatency:
			delay += w.delay
		case faultTransient:
			if err == nil {
				err = Transient(fmt.Errorf("flaky: scripted storm at write %d: %w", seq, ErrInjected))
			}
		case faultFatal:
			err = fmt.Errorf("flaky: scripted outage at write %d: %w", seq, ErrInjected)
		}
	}
	if err != nil {
		f.injected++
		if f.firstAt.IsZero() {
			f.firstAt = time.Now()
		}
	}
	sleep := f.sleep
	f.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return err, delay
}

// Append implements Device.
func (f *Flaky) Append(log string, rec Record) error {
	if err, _ := f.decide(); err != nil {
		return err
	}
	return f.Inner.Append(log, rec)
}

// WriteBlob implements Device.
func (f *Flaky) WriteBlob(name string, payload []byte) error {
	if err, _ := f.decide(); err != nil {
		return err
	}
	return f.Inner.WriteBlob(name, payload)
}

// Truncate implements Device.
func (f *Flaky) Truncate(log string, upTo uint64) error {
	if err, _ := f.decide(); err != nil {
		return err
	}
	return f.Inner.Truncate(log, upTo)
}

// ReleaseThrough implements Releaser; segment release is a write arrival
// like truncation, counted against the same script windows.
func (f *Flaky) ReleaseThrough(log string, epoch uint64) error {
	if err, _ := f.decide(); err != nil {
		return err
	}
	return Release(f.Inner, log, epoch)
}

// ReadFrom implements LogReader; reads always succeed (see type comment).
func (f *Flaky) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	return ReadFrom(f.Inner, log, fromEpoch)
}

// ReadLog implements Device.
func (f *Flaky) ReadLog(log string) ([]Record, error) { return f.Inner.ReadLog(log) }

// ReadBlob implements Device.
func (f *Flaky) ReadBlob(name string) ([]byte, bool, error) { return f.Inner.ReadBlob(name) }

// BytesWritten implements Device.
func (f *Flaky) BytesWritten() map[string]int64 { return f.Inner.BytesWritten() }
