package storage

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compressed wraps a Device and DEFLATE-compresses every payload on the
// way down, decompressing on the way up — the log-compression direction
// the paper sketches for computational storage (Section VII): trading CPU
// (here, host CPU standing in for the device's) for durable bandwidth.
//
// Framing: a payload is stored as one byte tag (0 = stored raw, 1 =
// DEFLATE) followed by the data. Payloads that do not shrink are stored
// raw, so compression never inflates a record.
//
// Byte accounting: the inner device naturally accounts *compressed* sizes;
// CompressedBytes/RawBytes expose the ratio achieved.
type Compressed struct {
	Inner Device
	// Level is the flate level; zero means flate.DefaultCompression.
	Level int

	mu   sync.Mutex
	raw  int64
	comp int64
}

// NewCompressed wraps inner with default-level compression.
func NewCompressed(inner Device) *Compressed {
	return &Compressed{Inner: inner, Level: flate.DefaultCompression}
}

func (c *Compressed) level() int {
	if c.Level == 0 {
		return flate.DefaultCompression
	}
	return c.Level
}

func (c *Compressed) pack(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(1)
	w, err := flate.NewWriter(&buf, c.level())
	if err != nil {
		return nil, fmt.Errorf("storage: compress: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return nil, fmt.Errorf("storage: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("storage: compress: %w", err)
	}
	out := buf.Bytes()
	if len(out) >= len(payload)+1 {
		// Incompressible: store raw.
		out = append([]byte{0}, payload...)
	}
	c.mu.Lock()
	c.raw += int64(len(payload))
	c.comp += int64(len(out))
	c.mu.Unlock()
	return out, nil
}

func unpack(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("storage: decompress: empty payload")
	}
	tag, body := data[0], data[1:]
	switch tag {
	case 0:
		return append([]byte(nil), body...), nil
	case 1:
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(body)))
		if err != nil {
			return nil, fmt.Errorf("storage: decompress: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("storage: decompress: unknown tag %d", tag)
	}
}

// Append implements Device.
func (c *Compressed) Append(log string, rec Record) error {
	packed, err := c.pack(rec.Payload)
	if err != nil {
		return err
	}
	return c.Inner.Append(log, Record{Epoch: rec.Epoch, Payload: packed})
}

// ReadLog implements Device.
func (c *Compressed) ReadLog(log string) ([]Record, error) {
	recs, err := c.Inner.ReadLog(log)
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(recs))
	for i, rec := range recs {
		payload, err := unpack(rec.Payload)
		if err != nil {
			return nil, fmt.Errorf("storage: log %q record %d: %w", log, i, err)
		}
		out[i] = Record{Epoch: rec.Epoch, Payload: payload}
	}
	return out, nil
}

// WriteBlob implements Device.
func (c *Compressed) WriteBlob(name string, payload []byte) error {
	packed, err := c.pack(payload)
	if err != nil {
		return err
	}
	return c.Inner.WriteBlob(name, packed)
}

// ReadBlob implements Device.
func (c *Compressed) ReadBlob(name string) ([]byte, bool, error) {
	b, ok, err := c.Inner.ReadBlob(name)
	if err != nil || !ok {
		return nil, ok, err
	}
	payload, err := unpack(b)
	if err != nil {
		return nil, false, fmt.Errorf("storage: blob %q: %w", name, err)
	}
	return payload, true, nil
}

// Truncate implements Device.
func (c *Compressed) Truncate(log string, upTo uint64) error {
	return c.Inner.Truncate(log, upTo)
}

// ReleaseThrough implements Releaser; GC carries no payload to compress.
func (c *Compressed) ReleaseThrough(log string, epoch uint64) error {
	return Release(c.Inner, log, epoch)
}

// ReadFrom implements LogReader: the inner cursor streams compressed
// records, each unpacked as it is yielded, so streaming recovery keeps its
// bounded-memory property through the compression layer.
func (c *Compressed) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	cur, err := ReadFrom(c.Inner, log, fromEpoch)
	if err != nil {
		return nil, err
	}
	return &unpackCursor{inner: cur, log: log}, nil
}

type unpackCursor struct {
	inner Cursor
	log   string
	i     int
}

func (u *unpackCursor) Next() (Record, bool, error) {
	rec, ok, err := u.inner.Next()
	if err != nil || !ok {
		return Record{}, false, err
	}
	payload, err := unpack(rec.Payload)
	if err != nil {
		return Record{}, false, fmt.Errorf("storage: log %q record %d: %w", u.log, u.i, err)
	}
	u.i++
	return Record{Epoch: rec.Epoch, Payload: payload}, true, nil
}

func (u *unpackCursor) Close() error { return u.inner.Close() }

// BytesWritten implements Device; sizes are post-compression.
func (c *Compressed) BytesWritten() map[string]int64 { return c.Inner.BytesWritten() }

// Ratio returns compressed/raw bytes over everything written so far
// (1.0 = no gain; smaller is better), or 1 if nothing was written.
func (c *Compressed) Ratio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.raw == 0 {
		return 1
	}
	return float64(c.comp) / float64(c.raw)
}
