package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestSegStoreDevice(t *testing.T) {
	deviceContract(t, NewSegStore(SegConfig{}))
}

func TestSegStoreDeviceTinySegments(t *testing.T) {
	// A segment per record or two: the contract must hold across seals.
	deviceContract(t, NewSegStore(SegConfig{SegmentBytes: 24}))
}

// TestSegStoreSealAndIndex: records spill into sealed segments whose index
// entries carry the epoch bounds a seek needs.
func TestSegStoreSealAndIndex(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 32})
	for ep := uint64(1); ep <= 10; ep++ {
		if err := s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")}); err != nil {
			t.Fatal(err)
		}
	}
	idx := s.Index("log")
	if len(idx) < 3 {
		t.Fatalf("expected multiple segments at 32B cap, got %d", len(idx))
	}
	var prevSeq, prevSeek uint64
	total := uint64(0)
	for i, m := range idx {
		if m.Lo > m.Hi {
			t.Fatalf("segment %d: lo %d > hi %d", i, m.Lo, m.Hi)
		}
		if i > 0 && m.Seq <= prevSeq {
			t.Fatalf("segment %d: seq %d not increasing", i, m.Seq)
		}
		if m.SeekHi < m.Hi || m.SeekHi < prevSeek {
			t.Fatalf("segment %d: seekHi %d not a prefix max", i, m.SeekHi)
		}
		prevSeq, prevSeek = m.Seq, m.SeekHi
		total += m.Records
	}
	if total != 10 {
		t.Fatalf("index records = %d, want 10", total)
	}
}

// TestSegStoreSeek: a cursor from a mid-log epoch yields exactly the suffix,
// in order, without touching earlier records.
func TestSegStoreSeek(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 32})
	for ep := uint64(1); ep <= 20; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte{byte(ep)}})
	}
	for _, from := range []uint64{0, 1, 7, 19, 20, 99} {
		cur, err := s.ReadFrom("log", from)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAll(cur)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if from < 20 {
			want = int(20 - from)
		}
		if len(recs) != want {
			t.Fatalf("from %d: %d records, want %d", from, len(recs), want)
		}
		for i, rec := range recs {
			if rec.Epoch != from+uint64(i)+1 {
				t.Fatalf("from %d record %d: epoch %d", from, i, rec.Epoch)
			}
		}
	}
}

// TestSegStoreSeekNonMonotone: a log whose epochs dip (recovered
// incarnations re-append lower coordinator epochs) must still seek
// correctly — seekHi may overestimate, never skip.
func TestSegStoreSeekNonMonotone(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 24})
	epochs := []uint64{1, 2, 5, 6, 3, 4, 7, 2, 8, 9}
	for _, ep := range epochs {
		s.Append("log", Record{Epoch: ep, Payload: []byte("payload")})
	}
	for _, from := range []uint64{0, 2, 4, 6} {
		cur, _ := s.ReadFrom("log", from)
		recs, err := ReadAll(cur)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, ep := range epochs {
			if ep > from {
				want = append(want, ep)
			}
		}
		if len(recs) != len(want) {
			t.Fatalf("from %d: %d records, want %d", from, len(recs), len(want))
		}
		for i, rec := range recs {
			if rec.Epoch != want[i] {
				t.Fatalf("from %d record %d: epoch %d, want %d", from, i, rec.Epoch, want[i])
			}
		}
	}
}

// TestSegStoreReleaseReclaims: releasing a covered prefix pops whole
// segments and reuses their slabs for new appends.
func TestSegStoreReleaseReclaims(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 32})
	for ep := uint64(1); ep <= 12; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	before := s.Segments("log")
	if err := s.ReleaseThrough("log", 8); err != nil {
		t.Fatal(err)
	}
	if s.Released("log") == 0 {
		t.Fatal("release reclaimed nothing")
	}
	if s.Segments("log") >= before {
		t.Fatalf("segments %d not reduced from %d", s.Segments("log"), before)
	}
	// Conservative retention: a straddling segment may keep records <= 8,
	// but the cursor filter hides them.
	cur, _ := s.ReadFrom("log", 8)
	recs, err := ReadAll(cur)
	if err != nil || len(recs) != 4 || recs[0].Epoch != 9 {
		t.Fatalf("post-release read: %d recs, %v", len(recs), err)
	}
}

// TestSegStoreBudget: a bounded ring refuses appends once live segments
// reach the cap, and accepts them again after a release.
func TestSegStoreBudget(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 24, MaxSegments: 3})
	var ep uint64
	for {
		ep++
		if err := s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")}); err != nil {
			if !errors.Is(err, ErrSegmentBudget) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		if ep > 1000 {
			t.Fatal("budget never enforced")
		}
	}
	if s.Segments("log") != 3 {
		t.Fatalf("live segments = %d, want 3", s.Segments("log"))
	}
	// A covering release frees the ring for reuse.
	if err := s.ReleaseThrough("log", ep); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("log", Record{Epoch: ep + 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("append after release: %v", err)
	}
}

// TestSegStoreCursorPinsSurviveRelease: a cursor opened before a release
// still reads its snapshot — released slabs must not recycle under it.
func TestSegStoreCursorPinsSurviveRelease(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 24})
	for ep := uint64(1); ep <= 8; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte{byte(ep), byte(ep), byte(ep)}})
	}
	cur, _ := s.ReadFrom("log", 0)
	if err := s.Truncate("log", 8); err != nil {
		t.Fatal(err)
	}
	// Overwrite traffic that would reuse freed slabs if pins were ignored.
	for ep := uint64(9); ep <= 16; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte{0xFF, 0xFF, 0xFF}})
	}
	recs, err := ReadAll(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 8 {
		t.Fatalf("pinned cursor lost records: %d", len(recs))
	}
	for i := 0; i < 8; i++ {
		if recs[i].Epoch != uint64(i+1) || recs[i].Payload[0] != byte(i+1) {
			t.Fatalf("record %d corrupted: %+v", i, recs[i])
		}
	}
}

// TestSegStoreCompaction: compaction rewrites straddling segments down to
// their live suffix, shrinking bytes while preserving the readable records.
func TestSegStoreCompaction(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 1 << 10})
	for ep := uint64(1); ep <= 100; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	// Everything lands in one active segment; seal it by overflow.
	for ep := uint64(101); ep <= 200; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	if err := s.ReleaseThrough("log", 150); err != nil {
		t.Fatal(err)
	}
	idxBefore := s.Index("log")
	if n := s.CompactNow("log"); n == 0 {
		t.Fatalf("no segments compacted (index %+v)", idxBefore)
	}
	var liveBytes, liveRecs uint64
	for _, m := range s.Index("log") {
		liveBytes += m.Bytes
		liveRecs += m.Records
	}
	var beforeBytes uint64
	for _, m := range idxBefore {
		beforeBytes += m.Bytes
	}
	if liveBytes >= beforeBytes {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", beforeBytes, liveBytes)
	}
	cur, _ := s.ReadFrom("log", 150)
	recs, err := ReadAll(cur)
	if err != nil || len(recs) != 50 || recs[0].Epoch != 151 || recs[49].Epoch != 200 {
		t.Fatalf("post-compaction read: %d recs, %v", len(recs), err)
	}
}

// TestSegStoreInlineCompact: Compact=true compacts on every release.
func TestSegStoreInlineCompact(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 64, Compact: true})
	for ep := uint64(1); ep <= 30; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	if err := s.ReleaseThrough("log", 15); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Index("log") {
		if m.Hi > 15 && m.Lo <= 15 {
			t.Fatalf("straddling segment survived inline compaction: %+v", m)
		}
	}
	cur, _ := s.ReadFrom("log", 15)
	recs, _ := ReadAll(cur)
	if len(recs) != 15 || recs[0].Epoch != 16 {
		t.Fatalf("post-compaction suffix: %d recs", len(recs))
	}
}

// TestSegStoreConcurrentReadersAndWriters: cursors race appends and
// releases without corruption (run under -race in CI's store-smoke job).
func TestSegStoreConcurrentReadersAndWriters(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 128})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ep := uint64(1); ep <= 2000; ep++ {
			s.Append("log", Record{Epoch: ep, Payload: []byte(fmt.Sprintf("payload-%d", ep))})
			if ep%97 == 0 {
				s.ReleaseThrough("log", ep-50)
			}
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cur, err := s.ReadFrom("log", seed*100+uint64(i%50))
				if err != nil {
					t.Error(err)
					return
				}
				prev := uint64(0)
				for {
					rec, ok, err := cur.Next()
					if err != nil {
						t.Error(err)
						cur.Close()
						return
					}
					if !ok {
						break
					}
					_ = prev
					prev = rec.Epoch
				}
				cur.Close()
			}
		}(uint64(w))
	}
	wg.Wait()
	cur, _ := s.ReadFrom("log", 0)
	if _, err := ReadAll(cur); err != nil {
		t.Fatal(err)
	}
}

// TestSegStoreHookOrdering: the release path updates the index strictly
// before reusing any slab — the seam the crash sweep relies on.
func TestSegStoreHookOrdering(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 24})
	var events []string
	s.SetHook(func(event, log string) { events = append(events, event) })
	for ep := uint64(1); ep <= 8; ep++ {
		s.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")})
	}
	if err := s.ReleaseThrough("log", 8); err != nil {
		t.Fatal(err)
	}
	sawIndex := -1
	for i, e := range events {
		if e == "release-index" && sawIndex < 0 {
			sawIndex = i
		}
		if e == "segment-reuse" && sawIndex < 0 {
			t.Fatalf("segment reused before index update: %v", events)
		}
	}
	if sawIndex < 0 {
		t.Fatalf("no release-index event: %v", events)
	}
}

// TestSegStoreOversizedRecord: a record larger than the segment cap gets a
// private segment and stays readable.
func TestSegStoreOversizedRecord(t *testing.T) {
	s := NewSegStore(SegConfig{SegmentBytes: 16})
	big := make([]byte, 100)
	for i := range big {
		big[i] = byte(i)
	}
	s.Append("log", Record{Epoch: 1, Payload: []byte("small")})
	s.Append("log", Record{Epoch: 2, Payload: big})
	s.Append("log", Record{Epoch: 3, Payload: []byte("small")})
	recs, err := s.ReadLog("log")
	if err != nil || len(recs) != 3 || len(recs[1].Payload) != 100 {
		t.Fatalf("oversized record: %d recs, %v", len(recs), err)
	}
}

// TestSegStoreThroughStack: the full wrapper stack preserves the seek and
// release capabilities down to a SegStore base.
func TestSegStoreThroughStack(t *testing.T) {
	base := NewSegStore(SegConfig{SegmentBytes: 32})
	dev := NewStack(base).WithRetry(RetryPolicy{}).MustBuild()
	for ep := uint64(1); ep <= 12; ep++ {
		if err := dev.Append("log", Record{Epoch: ep, Payload: []byte("0123456789")}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := ReadFrom(dev, "log", 9)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(cur)
	if err != nil || len(recs) != 3 || recs[0].Epoch != 10 {
		t.Fatalf("stacked seek: %d recs, %v", len(recs), err)
	}
	if err := Release(dev, "log", 8); err != nil {
		t.Fatal(err)
	}
	if base.Released("log") == 0 {
		t.Fatal("release did not reach the segment store through the stack")
	}
}
