package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrFenced is returned to a stale engine incarnation whose write fence
// has been advanced. It is fatal, never transient: the incarnation has
// been superseded and must stop.
var ErrFenced = errors.New("storage: write fenced: stale engine incarnation")

// Fence arbitrates device access between engine incarnations during
// in-process recovery, the single-node analogue of a distributed storage
// fence (lease epoch). Each incarnation writes through its own generation
// view; when the supervisor declares an incarnation dead — a wedged epoch
// whose goroutines it cannot kill — it advances the fence before starting
// recovery, and every later write from the zombie is rejected with
// ErrFenced instead of interleaving with the new incarnation's log.
//
// Advance blocks until in-flight writes of older generations drain, so a
// write can never straddle the fence: after Advance returns, the device
// content is stable for recovery to read. Reads are not fenced — stale
// reads are harmless, and the zombie reading does not perturb the medium.
type Fence struct {
	inner Device
	gen   atomic.Uint64
	// rw serialises Advance against in-flight guarded writes: writes hold
	// the read side across check-and-forward, Advance takes the write side.
	rw sync.RWMutex
}

// NewFence wraps inner; the initial generation is 1.
func NewFence(inner Device) *Fence {
	f := &Fence{inner: inner}
	f.gen.Store(1)
	return f
}

// Generation returns the current live generation.
func (f *Fence) Generation() uint64 { return f.gen.Load() }

// Advance invalidates every existing view and returns the new live
// generation. It blocks until in-flight writes of older generations have
// drained.
func (f *Fence) Advance() uint64 {
	f.rw.Lock()
	defer f.rw.Unlock()
	return f.gen.Add(1)
}

// View returns a Device bound to the given generation: writes succeed only
// while that generation is live; reads always pass through.
func (f *Fence) View(gen uint64) Device {
	return &fencedView{f: f, gen: gen, inner: f.inner}
}

// ViewOf is View over an arbitrary underlay: the generation check (and the
// drain guarantee of Advance) comes from f, but operations forward to dev.
// storage.Stack uses it so the fence layer can sit above wrappers that are
// per-incarnation while the fence itself persists across incarnations.
func (f *Fence) ViewOf(dev Device, gen uint64) Device {
	return &fencedView{f: f, gen: gen, inner: dev}
}

type fencedView struct {
	f     *Fence
	gen   uint64
	inner Device
}

// guard runs one write with the fence check held, so the write cannot
// straddle an Advance.
func (v *fencedView) guard(op string, fn func() error) error {
	v.f.rw.RLock()
	defer v.f.rw.RUnlock()
	if cur := v.f.gen.Load(); cur != v.gen {
		return fmt.Errorf("storage: %s: %w (generation %d, live %d)", op, ErrFenced, v.gen, cur)
	}
	return fn()
}

// Append implements Device.
func (v *fencedView) Append(log string, rec Record) error {
	return v.guard("append["+log+"]", func() error { return v.inner.Append(log, rec) })
}

// WriteBlob implements Device.
func (v *fencedView) WriteBlob(name string, payload []byte) error {
	return v.guard("blob["+name+"]", func() error { return v.inner.WriteBlob(name, payload) })
}

// Truncate implements Device.
func (v *fencedView) Truncate(log string, upTo uint64) error {
	return v.guard("truncate["+log+"]", func() error { return v.inner.Truncate(log, upTo) })
}

// ReleaseThrough implements Releaser. Segment release mutates the medium,
// so it is fenced like truncation: a zombie incarnation must not reclaim
// segments the live incarnation's recovery is about to read.
func (v *fencedView) ReleaseThrough(log string, epoch uint64) error {
	return v.guard("release["+log+"]", func() error { return Release(v.inner, log, epoch) })
}

// ReadFrom implements LogReader; reads are not fenced (see Fence doc).
func (v *fencedView) ReadFrom(log string, fromEpoch uint64) (Cursor, error) {
	return ReadFrom(v.inner, log, fromEpoch)
}

// ReadLog implements Device.
func (v *fencedView) ReadLog(log string) ([]Record, error) { return v.inner.ReadLog(log) }

// ReadBlob implements Device.
func (v *fencedView) ReadBlob(name string) ([]byte, bool, error) { return v.inner.ReadBlob(name) }

// BytesWritten implements Device.
func (v *fencedView) BytesWritten() map[string]int64 { return v.inner.BytesWritten() }
