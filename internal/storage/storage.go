// Package storage abstracts the durable storage that survives failures in
// the paper's failure model (Section II-C): append-only logs for input
// events and fault-tolerance records, plus named blobs for snapshots and
// recovery metadata.
//
// Three implementations are provided:
//
//   - Mem: an in-memory device. "Durable" within a process lifetime, which
//     is exactly what the crash model needs: Engine.Crash discards all
//     engine state but keeps the device, mimicking a machine whose SSD
//     survives a power cut.
//   - File: a directory-backed device with the same semantics across real
//     process restarts, used by the examples.
//   - Throttled: a wrapper that models a storage device with bounded write
//     bandwidth and per-operation latency (the paper's 2 GB/s, 146 kIOPS
//     Optane SSD), so that I/O overhead shapes reproduce on any host.
//
// All writes are synchronously durable: when a method returns, the data
// survives a crash. Group commit above this layer batches writes to
// amortise the per-operation cost, just as the paper's engines do.
package storage

import "sort"

// Record is one appended log entry, tagged with the epoch it belongs to so
// that recovery can replay epoch by epoch and garbage collection can drop
// whole prefixes.
type Record struct {
	Epoch   uint64
	Payload []byte
}

// Device is the durable storage interface.
type Device interface {
	// Append durably appends one record to the named log.
	Append(log string, rec Record) error
	// ReadLog returns every record of the named log in append order.
	// A log that was never written reads as empty.
	ReadLog(log string) ([]Record, error)
	// WriteBlob atomically replaces the named blob.
	WriteBlob(name string, payload []byte) error
	// ReadBlob returns the named blob's content, or ok=false if absent.
	ReadBlob(name string) (payload []byte, ok bool, err error)
	// Truncate durably drops all records of the named log whose epoch is
	// <= upTo. Used for garbage collection after a checkpoint commits.
	Truncate(log string, upTo uint64) error
	// BytesWritten returns the cumulative payload bytes appended or written
	// to the device, by log/blob name. Used by the overhead studies.
	BytesWritten() map[string]int64
}

// Well-known log and blob names shared by the engine and the
// fault-tolerance mechanisms.
const (
	LogInput = "input" // persisted input events, one record per epoch
	LogFT    = "ft"    // mechanism-specific records (WAL/DL/LV/MSR views)
	LogCkpt  = "ckpt"  // incremental checkpoint deltas (dirty partitions)

	BlobSnapshot = "snapshot" // latest committed base snapshot
	BlobMeta     = "meta"     // recovery metadata (watermarks, config echo)
)

// SumBytes totals a BytesWritten map.
func SumBytes(m map[string]int64) int64 {
	var t int64
	for _, n := range m {
		t += n
	}
	return t
}

// SortedNames returns the map's keys in sorted order for stable printing.
func SortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
