// Package vtime simulates the parallel recovery of a W-worker multicore in
// virtual time.
//
// Why simulation: the paper's recovery results are statements about
// parallel structure — WAL redo serializes onto one core, DL and LV are
// bounded by the inherent dependency graph, MorphStreamR's restructured
// chains run stall-free. Wall-clock measurement can only exhibit those
// effects on a machine with that many physical cores; on a small CI host,
// goroutines time-slice and every scheme degenerates to its total serial
// work. Following the reproduction ground rules (simulate hardware you do
// not have), the recovery executors therefore run the replay *for real*
// on one thread — so recovered state is exact — while a discrete-event
// list scheduler computes, from the actual dependency structure and a
// host-calibrated cost model, the per-worker busy/stall clocks and the
// makespan a W-worker machine would achieve. Single-threaded phases (log
// reload, sorting, graph rebuild, view indexing) stay real measured wall
// time; only the parallel replay phase is virtual.
//
// The simulation is deterministic: identical inputs produce identical
// clocks on any host, which also makes the scalability sweeps (Figure 13)
// reproducible everywhere.
package vtime

import (
	"sync"
	"time"

	"morphstreamr/internal/metrics"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
)

// ExecFactor models the ratio between the cost of performing one state
// access (big-table random access + user function + execution bookkeeping)
// and the cost of inserting one operation into the precedence graph. See
// Calibrate.
const ExecFactor = 4

// Costs is the virtual cost model. Every recovery-side charge — execution,
// preprocessing, graph construction, log decoding, sorting — is expressed
// in these units so that the components of a recovery breakdown are
// mutually consistent and host-independent in *ratio*; the absolute scale
// is calibrated once per process from the host's real per-operation
// pipeline cost, so virtual durations sit on the same axis as the real
// measured device I/O they are reported next to.
type Costs struct {
	// Op is the cost of one state access: apply the function, read/write
	// the record, update execution bookkeeping.
	Op time.Duration
	// PerDep is the additional cost per parametric dependency value.
	PerDep time.Duration
	// Preprocess is the cost of turning one event into a transaction.
	Preprocess time.Duration
	// Postprocess is the cost of producing one output.
	Postprocess time.Duration
	// Build is the per-operation cost of dependency identification and
	// graph insertion (TPG construction).
	Build time.Duration
	// Explore is the scheduling overhead per executed unit (dequeue,
	// dependency bookkeeping, chain switching).
	Explore time.Duration
	// Record is the per-record cost of decoding and indexing log records,
	// view entries, and auxiliary structures during reload/construct.
	Record time.Duration
	// Edge is the per-dependency-edge cost of rebuilding graphs or
	// partitioning chains during construct.
	Edge time.Duration
	// Compare is the per-comparison cost of sorting log records into
	// global order (WAL reload).
	Compare time.Duration
	// Sync is the per-edge cost of resolving a dependency across workers
	// during parallel execution: the cache-line transfer plus notification
	// that cross-thread dependency resolution costs on a real multicore.
	// MorphStreamR's restructuring exists precisely to avoid paying it.
	Sync time.Duration
	// Lookup is the cost of probing an already-built hash index (the
	// AbortView / ParametricView reads that replace dependency
	// resolution during MorphStreamR recovery).
	Lookup time.Duration
	// Pipeline is the per-event cost of the full stream-processing
	// dataflow (operator queues, windowing bookkeeping, output emission)
	// that full reprocessing replays but log-based redo bypasses.
	Pipeline time.Duration
}

var (
	calMu   sync.Mutex
	calDone bool
	calCost Costs
)

// SetCalibration overrides the process-wide cost model, bypassing the
// micro-benchmark. It exists as a determinism seam: profiler and
// critical-path tests pin FixedCosts so their expected virtual durations
// are exact integers on every host. Subsequent Calibrate calls return c
// verbatim.
func SetCalibration(c Costs) {
	calMu.Lock()
	defer calMu.Unlock()
	calCost = c
	calDone = true
}

// FixedCosts is a host-independent cost model with the same component
// ratios as a calibrated one (op = ExecFactor × build, sync = op, and the
// documented divisors), on a clean power-of-two base so derived quantities
// divide without remainder.
func FixedCosts() Costs {
	const base = 32 * time.Nanosecond // stands in for the measured tBuild
	const pre = 64 * time.Nanosecond  // stands in for the measured tPre
	return Costs{
		Op:          ExecFactor * base,
		PerDep:      ExecFactor * base / 8,
		Preprocess:  pre,
		Postprocess: pre / 2,
		Build:       base,
		Explore:     base / 2,
		Record:      base,
		Edge:        base / 3,
		Compare:     base / 8,
		Sync:        ExecFactor * base,
		Lookup:      base / 4,
		Pipeline:    6 * pre,
	}
}

// Calibrate measures the host's real pipeline costs once — transaction
// construction, graph building, and operation execution over a synthetic
// epoch — and derives the cost model. The component ratios are documented
// assumptions (DESIGN.md §1); the measured base adapts the scale to the
// host. SetCalibration pre-empts the measurement entirely.
func Calibrate() Costs {
	calMu.Lock()
	defer calMu.Unlock()
	if !calDone {
		const (
			nTxns  = 4000
			rounds = 5
		)
		// Per-event preprocessing cost: allocating a two-op transaction.
		mkTxn := func(i uint64) *types.Txn {
			src := types.Key{Table: 0, Row: uint32(i % 1024)}
			dst := types.Key{Table: 0, Row: uint32((i + 7) % 1024)}
			return &types.Txn{ID: i, TS: i, Ops: []types.Operation{
				{TxnID: i, TS: i, Idx: 0, Key: src, Fn: types.FnGuardedSubSelf, Const: 1},
				{TxnID: i, TS: i, Idx: 1, Key: dst, Fn: types.FnGuardedAdd, Const: 1,
					Deps: []types.Key{src}},
			}}
		}
		// Take the best of several rounds: the minimum is the standard
		// micro-benchmark estimator, immune to GC pauses and scheduler
		// preemption that would otherwise scale every virtual duration of
		// this process by a noise factor.
		tPre, tBuild, tFire := time.Hour, time.Hour, time.Hour
		for r := 0; r < rounds; r++ {
			st := store.New([]types.TableSpec{{ID: 0, Rows: 1024, Init: 100}})
			t0 := time.Now()
			txns := make([]*types.Txn, nTxns)
			for i := range txns {
				txns[i] = mkTxn(uint64(i))
			}
			if d := time.Since(t0) / nTxns; d < tPre {
				tPre = d
			}
			t0 = time.Now()
			g := tpg.Build(txns, st.Get)
			if d := time.Since(t0) / time.Duration(g.NumOps); d < tBuild {
				tBuild = d
			}
			t0 = time.Now()
			for _, tn := range g.Txns {
				for _, n := range tn.Ops {
					tpg.Fire(n, st)
				}
			}
			if d := time.Since(t0) / time.Duration(g.NumOps); d < tFire {
				tFire = d
			}
		}

		clamp := func(d, min time.Duration) time.Duration {
			if d < min {
				return min
			}
			return d
		}
		tPre = clamp(tPre, 20*time.Nanosecond)
		tBuild = clamp(tBuild, 20*time.Nanosecond)
		tFire = clamp(tFire, 10*time.Nanosecond)

		// Execution cost model: one state access in the reproduced system
		// is dominated by a DRAM-miss-prone table access, model
		// maintenance, and the user function — in MorphStream's reported
		// profiles several times the cost of inserting the operation into
		// the precedence graph. We model it as ExecFactor times the
		// measured graph-insert cost (the raw in-cache types.Apply cost,
		// tFire, is far below either and serves only as a floor).
		op := ExecFactor * tBuild
		if op < tFire {
			op = tFire
		}
		calCost = Costs{
			Op:          op,
			PerDep:      op / 8,
			Preprocess:  tPre,
			Postprocess: tPre / 2,
			Build:       tBuild,
			Explore:     tBuild / 2,
			Record:      tBuild,
			Edge:        tBuild / 3,
			Compare:     tBuild / 8,
			Sync:        ExecFactor * tBuild,
			Lookup:      tBuild / 4,
			Pipeline:    6 * tPre,
		}
		calDone = true
	}
	return calCost
}

// SortCost returns the virtual cost of sorting n log records into global
// order: n·log2(n) comparisons.
func (c Costs) SortCost(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	log2 := 0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	return time.Duration(n) * time.Duration(log2) * c.Compare
}

// GraphCost returns the virtual cost of preprocessing events and building
// a task precedence graph over ops operations: the construct charge of
// replay paths that rebuild the epoch pipeline.
func (c Costs) GraphCost(events, ops int) time.Duration {
	return time.Duration(events)*c.Preprocess + time.Duration(ops)*c.Build
}

// TxnCost returns the virtual cost of executing one transaction's state
// accesses (excluding preprocessing).
func (c Costs) TxnCost(txn *types.Txn) time.Duration {
	d := time.Duration(0)
	for i := range txn.Ops {
		d += c.Op + time.Duration(len(txn.Ops[i].Deps))*c.PerDep
	}
	return d
}

// Clock tracks one virtual worker.
type Clock struct {
	// Now is the worker's current virtual time.
	Now time.Duration
	// Busy splits into execution vs scheduling overhead; Stall is idle
	// time waiting for dependencies or work.
	Execute time.Duration
	Explore time.Duration
	Abort   time.Duration
	Stall   time.Duration
}

// Advance moves the worker to start (accumulating stall), then charges
// explore overhead and the busy cost, returning the finish time.
func (c *Clock) Advance(start, explore, busy time.Duration, abort bool) time.Duration {
	if start > c.Now {
		c.Stall += start - c.Now
		c.Now = start
	}
	c.Explore += explore
	if abort {
		c.Abort += busy
	} else {
		c.Execute += busy
	}
	c.Now += explore + busy
	return c.Now
}

// Result summarises one simulated parallel phase.
type Result struct {
	Clocks []Clock
	// Makespan is the virtual wall-clock length of the phase: the maximum
	// worker finish time. Workers finishing early are padded with stall
	// time so that the total thread-time is exactly Workers * Makespan.
	Makespan time.Duration
}

// Charge folds the simulated clocks into a recovery breakdown under the
// aggregate-thread-time convention (total contribution = W * makespan).
// Dependency stalls charge to wait time, except for mechanisms that stall
// by actively probing shared state (LV's recovered-LSN vector polling),
// whose stalls the paper books as explore time — set stallToExplore.
func (r Result) Charge(bd *metrics.RecoveryBreakdown, stallToExplore bool) {
	for i := range r.Clocks {
		c := &r.Clocks[i]
		bd.Execute += c.Execute
		bd.Abort += c.Abort
		bd.Explore += c.Explore
		if stallToExplore {
			bd.Explore += c.Stall
		} else {
			bd.Wait += c.Stall
		}
	}
}

// Finish pads all clocks to the makespan and wraps them in a Result.
func Finish(clocks []Clock) Result {
	var mk time.Duration
	for i := range clocks {
		if clocks[i].Now > mk {
			mk = clocks[i].Now
		}
	}
	for i := range clocks {
		if clocks[i].Now < mk {
			clocks[i].Stall += mk - clocks[i].Now
			clocks[i].Now = mk
		}
	}
	return Result{Clocks: clocks, Makespan: mk}
}
