package vtime

import (
	"testing"
	"time"
)

// TestRollupGroup pins the group rollup arithmetic: serial is the summed
// timeline, parallel the max, speedup their ratio, and balance mean/max.
func TestRollupGroup(t *testing.T) {
	shards := []Profile{
		{Timeline: 4 * time.Millisecond, Work: 3 * time.Millisecond, CritPath: 1 * time.Millisecond},
		{Timeline: 2 * time.Millisecond, Work: 2 * time.Millisecond, CritPath: 2 * time.Millisecond},
		{Timeline: 2 * time.Millisecond, Work: 1 * time.Millisecond, CritPath: 1 * time.Millisecond},
	}
	g := RollupGroup(shards)
	if g.Serial != 8*time.Millisecond {
		t.Errorf("serial %v, want 8ms", g.Serial)
	}
	if g.Parallel != 4*time.Millisecond {
		t.Errorf("parallel %v, want 4ms", g.Parallel)
	}
	if g.Work != 6*time.Millisecond {
		t.Errorf("work %v, want 6ms", g.Work)
	}
	if g.CritPath != 2*time.Millisecond {
		t.Errorf("critical path %v, want 2ms", g.CritPath)
	}
	if got, want := g.Speedup(), 2.0; got != want {
		t.Errorf("speedup %v, want %v", got, want)
	}
	// mean = 8/3 ms, max = 4 ms.
	if got, want := g.Balance(), 8.0/3.0/4.0; got != want {
		t.Errorf("balance %v, want %v", got, want)
	}
}

// TestRollupGroupEmpty pins the degenerate cases: no shards, and a
// zero-length parallel timeline.
func TestRollupGroupEmpty(t *testing.T) {
	g := RollupGroup(nil)
	if g.Speedup() != 0 || g.Balance() != 0 {
		t.Errorf("empty rollup: speedup %v balance %v, want 0, 0", g.Speedup(), g.Balance())
	}
}
