package vtime

import (
	"fmt"
	"sort"
	"time"
)

// SpanKind classifies one profiler span on a virtual worker's timeline.
type SpanKind uint8

const (
	// SpanExec is time performing state accesses (committed work).
	SpanExec SpanKind = iota
	// SpanExplore is scheduling/synchronisation overhead (dequeue,
	// dependency bookkeeping, cross-worker resolution, vector probing).
	SpanExplore
	// SpanAbort is execution time spent on aborted transactions.
	SpanAbort
	// SpanPhaseWork is bulk phase work outside the operation-level replay:
	// log decoding, sorting, graph rebuilding, view indexing. Serial
	// phases occupy every lane for their wall length; spread phases divide
	// aggregate thread-time evenly across lanes.
	SpanPhaseWork
	// SpanStall is idle time, attributed to its cause via EdgeKind.
	SpanStall
)

// String returns the span kind's report name.
func (k SpanKind) String() string {
	switch k {
	case SpanExec:
		return "exec"
	case SpanExplore:
		return "explore"
	case SpanAbort:
		return "abort"
	case SpanPhaseWork:
		return "phase"
	case SpanStall:
		return "stall"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// EdgeKind attributes a stall to the dependency (or structural cause)
// that blocked the worker.
type EdgeKind uint8

const (
	// EdgeNone marks spans that are not stalls (and stalls with no cause).
	EdgeNone EdgeKind = iota
	// EdgeTD is a temporal dependency: the previous operation on the same
	// key's chain had not finished.
	EdgeTD
	// EdgeLD is a logical dependency: the transaction's condition
	// operation had not decided commit/abort.
	EdgeLD
	// EdgePD is a parametric dependency: a consumed value's producer had
	// not finished.
	EdgePD
	// EdgeTxn is a transaction-level logged dependency (DL's rebuilt
	// graph, which does not retain the fine-grained kind).
	EdgeTxn
	// EdgeVec is an LSN-vector dependency (LV's recovered-LSN polling).
	EdgeVec
	// EdgeSerial marks workers idled by a mechanism-imposed serial phase
	// (WAL's sequential redo).
	EdgeSerial
	// EdgeDrain is end-of-phase load imbalance: no work left for this
	// worker while another still runs.
	EdgeDrain
)

// String returns the edge kind's report name.
func (e EdgeKind) String() string {
	switch e {
	case EdgeNone:
		return "none"
	case EdgeTD:
		return "TD"
	case EdgeLD:
		return "LD"
	case EdgePD:
		return "PD"
	case EdgeTxn:
		return "DEP"
	case EdgeVec:
		return "VEC"
	case EdgeSerial:
		return "SERIAL"
	case EdgeDrain:
		return "DRAIN"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(e))
	}
}

// ProfSpan is one interval on a virtual worker's recovery timeline. Start
// is an offset on the profile-global virtual clock (phases concatenate).
type ProfSpan struct {
	Worker int           `json:"worker"`
	Kind   SpanKind      `json:"-"`
	Phase  int           `json:"phase"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	// Label identifies the unit of work ("t42.1" for an operation,
	// "ev1007" for a redo record, the phase name for phase work).
	Label string `json:"label"`
	// Edge and Blocker attribute a stall span: the dependency kind and
	// the unit that was still running.
	Edge    EdgeKind `json:"-"`
	Blocker string   `json:"blocker,omitempty"`
}

// WorkerTotals is one lane's time decomposition within a phase or across
// the whole profile.
type WorkerTotals struct {
	Exec      time.Duration `json:"exec_ns"`
	Explore   time.Duration `json:"explore_ns"`
	Abort     time.Duration `json:"abort_ns"`
	PhaseWork time.Duration `json:"phase_work_ns"`
	Stall     time.Duration `json:"stall_ns"`
}

// Busy is all non-idle time: execution, aborts, and bulk phase work.
func (w WorkerTotals) Busy() time.Duration { return w.Exec + w.Abort + w.PhaseWork }

// Total is the lane's full accounted time.
func (w WorkerTotals) Total() time.Duration { return w.Busy() + w.Explore + w.Stall }

func (w *WorkerTotals) add(o WorkerTotals) {
	w.Exec += o.Exec
	w.Explore += o.Explore
	w.Abort += o.Abort
	w.PhaseWork += o.PhaseWork
	w.Stall += o.Stall
}

// PhaseKind classifies how a recovery phase uses the machine.
type PhaseKind uint8

const (
	// PhaseParallel is an operation-level replay simulated on W lanes.
	PhaseParallel PhaseKind = iota
	// PhaseSerial is a single-threaded phase that blocks the whole
	// machine (every lane busy for the wall length — the ChargeSerial
	// convention).
	PhaseSerial
	// PhaseSpread is parallelizable bulk work charged as aggregate
	// thread-time and divided evenly across lanes.
	PhaseSpread
)

// String returns the phase kind's report name.
func (k PhaseKind) String() string {
	switch k {
	case PhaseParallel:
		return "parallel"
	case PhaseSerial:
		return "serial"
	case PhaseSpread:
		return "spread"
	default:
		return fmt.Sprintf("PhaseKind(%d)", uint8(k))
	}
}

// PhaseProfile summarises one recovery phase on the virtual timeline.
type PhaseProfile struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Start is the phase's offset on the profile-global virtual clock;
	// Makespan its virtual wall length.
	Start    time.Duration `json:"start_ns"`
	Makespan time.Duration `json:"makespan_ns"`
	// CritPath is the longest dependency path through the phase's work
	// under the cost model (serial and spread phases: the phase length).
	CritPath time.Duration `json:"critical_path_ns"`
	// Work is the aggregate thread-time of useful work (busy + explore).
	Work time.Duration `json:"work_ns"`
	// LowerBound is the list-scheduling lower bound on the phase
	// makespan: max(CritPath, Work/lanes). Makespan >= LowerBound always.
	LowerBound time.Duration `json:"lower_bound_ns"`
	// ActiveLanes counts lanes that performed any work in the phase; a
	// sequential redo shows exactly one.
	ActiveLanes int            `json:"active_lanes"`
	Lanes       []WorkerTotals `json:"lanes"`
}

// StallCause aggregates the stall time attributed to one (edge, blocker)
// pair — the "top stall-causing edges" of the report.
type StallCause struct {
	Edge    string        `json:"edge"`
	Blocker string        `json:"blocker"`
	Total   time.Duration `json:"total_ns"`
	Count   int64         `json:"count"`
}

// LaneProfile is one worker's whole-profile decomposition.
type LaneProfile struct {
	Worker int `json:"worker"`
	WorkerTotals
	Total time.Duration `json:"total_ns"`
}

// Profile is the complete recovery profile: the per-worker decomposition,
// the phase table, and the critical-path analysis. All durations are
// virtual-timebase nanoseconds (the calibrated cost model's axis).
type Profile struct {
	Workers int `json:"workers"`
	// Timeline is the total virtual recovery length: the sum of phase
	// makespans (device I/O wall time is reported separately in the
	// recovery breakdown and is not part of the virtual timeline).
	Timeline time.Duration `json:"timeline_ns"`
	// CritPath and LowerBound sum the per-phase values; CPRatio is
	// Timeline/LowerBound — 1.0 means the schedule is optimal under the
	// cost model, W means one worker did everything.
	CritPath   time.Duration `json:"critical_path_ns"`
	LowerBound time.Duration `json:"lower_bound_ns"`
	CPRatio    float64       `json:"cp_ratio"`
	Work       time.Duration `json:"work_ns"`
	Lanes      []LaneProfile `json:"lanes"`
	Phases     []PhaseProfile `json:"phases"`
	// StallByEdge totals stall time per attributed edge kind; TopStalls
	// ranks individual (edge, blocker) pairs.
	StallByEdge map[string]time.Duration `json:"stall_by_edge_ns"`
	TopStalls   []StallCause             `json:"top_stalls"`
	Spans       int                      `json:"spans"`
	DroppedSpans uint64                  `json:"dropped_spans"`
}

// StallShare is the fraction of total lane-time spent stalled behind an
// attributed dependency or serialisation — a TD/LD/PD edge, a logged
// transaction dependency, an LSN-vector wait, or a mechanism-imposed
// serial phase. This is the quantity MorphStreamR's restructuring
// eliminates; end-of-phase load imbalance is reported separately by
// DrainShare.
func (p *Profile) StallShare() float64 {
	dep, _, total := p.stallSplit()
	if total == 0 {
		return 0
	}
	return float64(dep) / float64(total)
}

// DrainShare is the fraction of total lane-time lost to end-of-phase load
// imbalance (EdgeDrain): lanes idle because the phase's remaining work sat
// on other workers — a placement-granularity cost, not a dependency stall.
func (p *Profile) DrainShare() float64 {
	_, drain, total := p.stallSplit()
	if total == 0 {
		return 0
	}
	return float64(drain) / float64(total)
}

func (p *Profile) stallSplit() (dep, drain, total time.Duration) {
	for _, l := range p.Lanes {
		total += l.Total
	}
	for edge, d := range p.StallByEdge {
		if edge == EdgeDrain.String() {
			drain += d
		} else {
			dep += d
		}
	}
	return dep, drain, total
}

// Consistent verifies the accounting invariant: every lane's
// exec+explore+abort+phase+stall must equal the timeline exactly (integer
// virtual nanoseconds, so "exactly" means exactly).
func (p *Profile) Consistent() error {
	for _, l := range p.Lanes {
		if l.Total != p.Timeline {
			return fmt.Errorf("vtime: lane %d decomposition %v != timeline %v (exec=%v explore=%v abort=%v phase=%v stall=%v)",
				l.Worker, l.Total, p.Timeline, l.Exec, l.Explore, l.Abort, l.PhaseWork, l.Stall)
		}
	}
	return nil
}

// Phase returns the named phase profile, or nil.
func (p *Profile) Phase(name string) *PhaseProfile {
	for i := range p.Phases {
		if p.Phases[i].Name == name {
			return &p.Phases[i]
		}
	}
	return nil
}

// DefaultMaxSpans caps the profiler's span buffer; totals and the phase
// table keep accumulating after the cap, only the per-span timeline drops
// (counted in DroppedSpans, mirroring the obs tracer's accounting).
const DefaultMaxSpans = 1 << 20

type stallKey struct {
	edge    EdgeKind
	blocker string
}

type stallAgg struct {
	total time.Duration
	count int64
}

// phaseState is the open phase under construction.
type phaseState struct {
	name  string
	kind  PhaseKind
	cp    time.Duration // longest dependency path seen so far
	work  time.Duration
	lanes []WorkerTotals
	now   []time.Duration // per-lane virtual clock within the phase
}

// Profiler records per-worker virtual-timebase span events and critical
// path bounds while a recovery replay is simulated. A nil *Profiler is the
// disabled profiler: every method is a cheap no-op, so the recovery path
// is instrumented unconditionally and pays only nil checks when profiling
// is off (the virtual clocks themselves are never affected — the profiler
// observes the simulation, it does not participate in it).
//
// Usage: the recovery driver brackets each parallel replay with BeginPhase
// and EndPhase(makespan); the simulators (SimulateGraphProf,
// SimulateTxnGraphProf, LV's replay loop) report each executed unit via
// Op. Bulk phases charge through SerialPhase/SpreadPhase. Phases
// concatenate on one global virtual clock.
type Profiler struct {
	workers  int
	maxSpans int
	spans    []ProfSpan
	dropped  uint64
	base     time.Duration // global clock offset of the open phase
	phases   []PhaseProfile
	cur      *phaseState
	totals   []WorkerTotals
	stalls   map[stallKey]*stallAgg
}

// NewProfiler creates a profiler for the given worker count (lanes grow on
// demand if a replay uses more).
func NewProfiler(workers int) *Profiler {
	if workers < 1 {
		workers = 1
	}
	return &Profiler{
		workers:  workers,
		maxSpans: DefaultMaxSpans,
		totals:   make([]WorkerTotals, workers),
		stalls:   make(map[stallKey]*stallAgg),
	}
}

// Lanes returns the profiler's current lane count (0 when disabled).
func (p *Profiler) Lanes() int {
	if p == nil {
		return 0
	}
	return p.workers
}

func (p *Profiler) growLane(w int) {
	for w >= p.workers {
		p.workers++
		p.totals = append(p.totals, WorkerTotals{})
		// A lane appearing mid-profile missed the earlier timeline; book
		// the gap as unattributed stall so the decomposition stays exact.
		var catchUp WorkerTotals
		catchUp.Stall = p.base
		p.totals[p.workers-1] = catchUp
		if p.cur != nil {
			p.cur.lanes = append(p.cur.lanes, WorkerTotals{})
			p.cur.now = append(p.cur.now, 0)
		}
	}
}

func (p *Profiler) emit(s ProfSpan) {
	if s.Dur <= 0 {
		return
	}
	if len(p.spans) >= p.maxSpans {
		p.dropped++
		return
	}
	p.spans = append(p.spans, s)
}

// BeginPhase opens a parallel replay phase; every lane's phase clock
// starts at zero (the phase begins on the global clock at the sum of all
// earlier phase makespans).
func (p *Profiler) BeginPhase(name string) {
	if p == nil {
		return
	}
	if p.cur != nil {
		// A phase left open is closed at its high-water lane time.
		p.EndPhase(p.curMax())
	}
	p.cur = &phaseState{
		name:  name,
		kind:  PhaseParallel,
		lanes: make([]WorkerTotals, p.workers),
		now:   make([]time.Duration, p.workers),
	}
}

func (p *Profiler) curMax() time.Duration {
	var mk time.Duration
	for _, n := range p.cur.now {
		if n > mk {
			mk = n
		}
	}
	return mk
}

// ensurePhase auto-opens an anonymous replay phase so a stray Op cannot
// panic the simulation.
func (p *Profiler) ensurePhase() {
	if p.cur == nil {
		p.BeginPhase("replay")
	}
}

// Op records one executed unit on lane w within the open parallel phase:
// a stall from the lane's clock to start (attributed to edge/blocker),
// explore overhead, then busy execution. ef is the unit's earliest
// possible finish with unbounded workers (max producer ef + minimal
// explore + busy), folded into the phase critical path. The lane clock
// mirrors the simulator's Clock exactly.
func (p *Profiler) Op(w int, label string, start, explore, busy time.Duration, abort bool, edge EdgeKind, blocker string, ef time.Duration) {
	if p == nil {
		return
	}
	p.ensurePhase()
	p.growLane(w)
	ph := p.cur
	if start > ph.now[w] {
		p.stall(w, ph.now[w], start-ph.now[w], edge, blocker)
		ph.now[w] = start
	}
	if explore > 0 {
		p.emit(ProfSpan{Worker: w, Kind: SpanExplore, Phase: len(p.phases),
			Start: p.base + ph.now[w], Dur: explore, Label: label})
		ph.lanes[w].Explore += explore
		ph.now[w] += explore
	}
	if busy > 0 {
		kind := SpanExec
		if abort {
			kind = SpanAbort
		}
		p.emit(ProfSpan{Worker: w, Kind: kind, Phase: len(p.phases),
			Start: p.base + ph.now[w], Dur: busy, Label: label})
		if abort {
			ph.lanes[w].Abort += busy
		} else {
			ph.lanes[w].Exec += busy
		}
		ph.now[w] += busy
	}
	ph.work += explore + busy
	if ef > ph.cp {
		ph.cp = ef
	}
}

func (p *Profiler) stall(w int, at, dur time.Duration, edge EdgeKind, blocker string) {
	p.emit(ProfSpan{Worker: w, Kind: SpanStall, Phase: len(p.phases),
		Start: p.base + at, Dur: dur, Edge: edge, Blocker: blocker, Label: "stall:" + edge.String()})
	p.cur.lanes[w].Stall += dur
	p.addStall(edge, blocker, dur)
}

func (p *Profiler) addStall(edge EdgeKind, blocker string, dur time.Duration) {
	key := stallKey{edge: edge, blocker: blocker}
	agg := p.stalls[key]
	if agg == nil {
		agg = &stallAgg{}
		p.stalls[key] = agg
	}
	agg.total += dur
	agg.count++
}

// StallUntil pads lane w to the given phase time with an attributed stall
// (WAL's idle workers during sequential redo).
func (p *Profiler) StallUntil(w int, until time.Duration, edge EdgeKind, blocker string) {
	if p == nil {
		return
	}
	p.ensurePhase()
	p.growLane(w)
	if until > p.cur.now[w] {
		p.stall(w, p.cur.now[w], until-p.cur.now[w], edge, blocker)
		p.cur.now[w] = until
	}
}

// EndPhase closes the open parallel phase at the given makespan: lanes
// short of it are padded with drain stalls (load imbalance), the phase
// lower bound is fixed, and the global clock advances.
func (p *Profiler) EndPhase(makespan time.Duration) {
	if p == nil || p.cur == nil {
		return
	}
	ph := p.cur
	for w := range ph.now {
		if ph.now[w] < makespan {
			p.stall(w, ph.now[w], makespan-ph.now[w], EdgeDrain, "")
			ph.now[w] = makespan
		}
	}
	p.closePhase(ph.name, PhaseParallel, makespan, ph.cp, ph.work, ph.lanes)
	p.cur = nil
}

// SerialPhase records a single-threaded phase that blocks the whole
// machine for wall (reloading and sorting a log, rebuilding a dependency
// graph): lane 0 does the work and every other lane stalls on a SERIAL
// edge attributed to the phase. (metrics.ChargeSerial books the same
// interval as W x wall of the phase's own component; the profiler's
// timeline view instead shows the W-1 idle lanes the paper's wait bars
// hide inside those components.)
func (p *Profiler) SerialPhase(name string, wall time.Duration) {
	if p == nil || wall <= 0 {
		return
	}
	if p.cur != nil {
		p.EndPhase(p.curMax())
	}
	lanes := make([]WorkerTotals, p.workers)
	p.emit(ProfSpan{Worker: 0, Kind: SpanPhaseWork, Phase: len(p.phases),
		Start: p.base, Dur: wall, Label: name})
	lanes[0].PhaseWork = wall
	for w := 1; w < p.workers; w++ {
		p.emit(ProfSpan{Worker: w, Kind: SpanStall, Phase: len(p.phases),
			Start: p.base, Dur: wall, Edge: EdgeSerial, Blocker: name,
			Label: "stall:" + EdgeSerial.String()})
		lanes[w].Stall = wall
		p.addStall(EdgeSerial, name, wall)
	}
	p.closePhase(name, PhaseSerial, wall, wall, wall, lanes)
}

// SpreadPhase records parallelizable bulk work charged as aggregate
// thread-time (decoding log segments, indexing views): the total divides
// evenly across lanes, so the phase's virtual wall length is total/W.
func (p *Profiler) SpreadPhase(name string, total time.Duration) {
	if p == nil || total <= 0 {
		return
	}
	if p.cur != nil {
		p.EndPhase(p.curMax())
	}
	per := total / time.Duration(p.workers)
	if per <= 0 {
		return
	}
	lanes := make([]WorkerTotals, p.workers)
	for w := range lanes {
		p.emit(ProfSpan{Worker: w, Kind: SpanPhaseWork, Phase: len(p.phases),
			Start: p.base, Dur: per, Label: name})
		lanes[w].PhaseWork = per
	}
	p.closePhase(name, PhaseSpread, per, per, time.Duration(p.workers)*per, lanes)
}

func (p *Profiler) closePhase(name string, kind PhaseKind, makespan, cp, work time.Duration, lanes []WorkerTotals) {
	lb := cp
	if p.workers > 0 {
		if byWork := work / time.Duration(p.workers); byWork > lb {
			lb = byWork
		}
	}
	active := 0
	for w := range lanes {
		if lanes[w].Busy()+lanes[w].Explore > 0 {
			active++
		}
		p.totals[w].add(lanes[w])
	}
	p.phases = append(p.phases, PhaseProfile{
		Name: name, Kind: kind.String(), Start: p.base,
		Makespan: makespan, CritPath: cp, Work: work, LowerBound: lb,
		ActiveLanes: active, Lanes: lanes,
	})
	p.base += makespan
}

// Spans returns the recorded timeline (ordered by emission; starts are
// globally increasing per lane) and the overflow-dropped count.
func (p *Profiler) Spans() ([]ProfSpan, uint64) {
	if p == nil {
		return nil, 0
	}
	return p.spans, p.dropped
}

// Profile closes any open phase and assembles the report.
func (p *Profiler) Profile() Profile {
	if p == nil {
		return Profile{}
	}
	if p.cur != nil {
		p.EndPhase(p.curMax())
	}
	pr := Profile{
		Workers:      p.workers,
		Timeline:     p.base,
		Phases:       p.phases,
		StallByEdge:  make(map[string]time.Duration),
		Spans:        len(p.spans),
		DroppedSpans: p.dropped,
	}
	for _, ph := range p.phases {
		pr.CritPath += ph.CritPath
		pr.LowerBound += ph.LowerBound
		pr.Work += ph.Work
	}
	if pr.LowerBound > 0 {
		pr.CPRatio = float64(pr.Timeline) / float64(pr.LowerBound)
	}
	for w, t := range p.totals {
		lane := LaneProfile{Worker: w, WorkerTotals: t}
		// Lanes created mid-profile were back-filled with stall up to
		// their creation point; the final padding to the timeline is the
		// drain the last phases applied, so every lane totals the same.
		lane.Total = t.Total()
		pr.Lanes = append(pr.Lanes, lane)
	}
	for k, agg := range p.stalls {
		pr.StallByEdge[k.edge.String()] += agg.total
		pr.TopStalls = append(pr.TopStalls, StallCause{
			Edge: k.edge.String(), Blocker: k.blocker, Total: agg.total, Count: agg.count,
		})
	}
	sort.Slice(pr.TopStalls, func(i, j int) bool {
		if pr.TopStalls[i].Total != pr.TopStalls[j].Total {
			return pr.TopStalls[i].Total > pr.TopStalls[j].Total
		}
		if pr.TopStalls[i].Edge != pr.TopStalls[j].Edge {
			return pr.TopStalls[i].Edge < pr.TopStalls[j].Edge
		}
		return pr.TopStalls[i].Blocker < pr.TopStalls[j].Blocker
	})
	const topK = 10
	if len(pr.TopStalls) > topK {
		pr.TopStalls = pr.TopStalls[:topK]
	}
	return pr
}
