package vtime

import (
	"io"

	"morphstreamr/internal/obs"
)

// ChromeSpans converts profiler spans to obs span events: one trace lane
// per virtual worker, the virtual clock mapped onto the trace's time axis
// (obs.ExportChrome renders nanoseconds as trace microseconds), and stall
// attribution carried in the args pane. The category distinguishes span
// kinds so trace viewers can colour by category.
func ChromeSpans(spans []ProfSpan) []obs.SpanEvent {
	out := make([]obs.SpanEvent, 0, len(spans))
	for _, s := range spans {
		ev := obs.SpanEvent{
			Name:  s.Label,
			Cat:   "vtime-" + s.Kind.String(),
			Lane:  s.Worker,
			Start: s.Start,
			Dur:   s.Dur,
		}
		if s.Kind == SpanStall {
			ev.Args = map[string]any{"edge": s.Edge.String()}
			if s.Blocker != "" {
				ev.Args["blocker"] = s.Blocker
			}
		}
		out = append(out, ev)
	}
	return out
}

// WriteChrome writes the profiler's recorded timeline as a Chrome
// trace_event JSON document (loadable in chrome://tracing / Perfetto):
// tid = virtual worker, ts/dur = virtual microseconds. Safe on a nil
// profiler (writes an empty trace).
func (p *Profiler) WriteChrome(w io.Writer) error {
	spans, dropped := p.Spans()
	return obs.ExportChrome(w, ChromeSpans(spans), dropped)
}
