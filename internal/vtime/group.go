package vtime

import "time"

// GroupProfile rolls the per-shard recovery profiles of a shard group into
// one group-level virtual timeline. Shards recover concurrently, so the
// group's parallel recovery length is the slowest shard's timeline while
// the serial baseline (one shard after another, as a single-engine deploy
// would have to) is the sum — their ratio is the parallel recovery
// speedup reported next to the per-shard breakdowns.
type GroupProfile struct {
	// Shards are the per-shard profiles, in shard order.
	Shards []Profile `json:"shards"`
	// Serial is the summed timeline (one-at-a-time recovery); Parallel is
	// the max timeline (all shards at once).
	Serial   time.Duration `json:"serial_ns"`
	Parallel time.Duration `json:"parallel_ns"`
	// Work is the total virtual work across shards; CritPath the longest
	// single-shard critical path — the floor no amount of shard
	// parallelism can beat.
	Work     time.Duration `json:"work_ns"`
	CritPath time.Duration `json:"critical_path_ns"`
}

// RollupGroup combines per-shard recovery profiles.
func RollupGroup(shards []Profile) GroupProfile {
	g := GroupProfile{Shards: shards}
	for _, p := range shards {
		g.Serial += p.Timeline
		g.Work += p.Work
		if p.Timeline > g.Parallel {
			g.Parallel = p.Timeline
		}
		if p.CritPath > g.CritPath {
			g.CritPath = p.CritPath
		}
	}
	return g
}

// Speedup is Serial / Parallel — the factor shard-parallel recovery gains
// over recovering the same shards one at a time.
func (g *GroupProfile) Speedup() float64 {
	if g.Parallel <= 0 {
		return 0
	}
	return float64(g.Serial) / float64(g.Parallel)
}

// Balance is the mean shard timeline over the max — 1.0 when every shard
// recovers in the same virtual time, approaching 1/N when one shard
// dominates (the straggler that bounds group recovery).
func (g *GroupProfile) Balance() float64 {
	if g.Parallel <= 0 || len(g.Shards) == 0 {
		return 0
	}
	mean := float64(g.Serial) / float64(len(g.Shards))
	return mean / float64(g.Parallel)
}
