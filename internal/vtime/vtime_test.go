package vtime

import (
	"testing"
	"time"

	"morphstreamr/internal/metrics"

	"morphstreamr/internal/oracle"
	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

func TestCalibrateSane(t *testing.T) {
	c := Calibrate()
	if c.Op <= 0 || c.Build <= 0 || c.Preprocess <= 0 {
		t.Fatalf("calibration produced non-positive costs: %+v", c)
	}
	if c.Op < c.Build {
		t.Errorf("Op (%v) must not be below Build (%v): the exec-factor model", c.Op, c.Build)
	}
	if c2 := Calibrate(); c2 != c {
		t.Error("Calibrate must be cached and stable within a process")
	}
}

func TestSortCost(t *testing.T) {
	c := Costs{Compare: 10}
	if got := c.SortCost(0); got != 0 {
		t.Errorf("SortCost(0) = %v", got)
	}
	if got := c.SortCost(1); got != 0 {
		t.Errorf("SortCost(1) = %v", got)
	}
	// 8 records, log2 = 3 -> 8*3*10 = 240ns.
	if got := c.SortCost(8); got != 240 {
		t.Errorf("SortCost(8) = %v, want 240ns", got)
	}
}

func TestTxnAndGraphCost(t *testing.T) {
	c := Costs{Op: 100, PerDep: 10, Preprocess: 7, Build: 3}
	txn := &types.Txn{ID: 1, TS: 1, Ops: []types.Operation{
		{TxnID: 1, TS: 1, Idx: 0, Key: types.Key{Row: 1}, Fn: types.FnAdd},
		{TxnID: 1, TS: 1, Idx: 1, Key: types.Key{Row: 2}, Fn: types.FnGuardedAdd,
			Deps: []types.Key{{Row: 1}}},
	}}
	if got := c.TxnCost(txn); got != 210 {
		t.Errorf("TxnCost = %v, want 210ns", got)
	}
	if got := c.GraphCost(10, 20); got != 7*10+3*20 {
		t.Errorf("GraphCost = %v", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	fin := c.Advance(100, 5, 20, false)
	if fin != 125 || c.Stall != 100 || c.Explore != 5 || c.Execute != 20 || c.Abort != 0 {
		t.Errorf("clock after advance: %+v, fin=%v", c, fin)
	}
	fin = c.Advance(50, 0, 10, true) // start in the past: no stall
	if fin != 135 || c.Stall != 100 || c.Abort != 10 {
		t.Errorf("clock after second advance: %+v, fin=%v", c, fin)
	}
}

func TestFinishPadsToMakespan(t *testing.T) {
	clocks := []Clock{{Now: 100}, {Now: 40}}
	r := Finish(clocks)
	if r.Makespan != 100 {
		t.Errorf("makespan = %v", r.Makespan)
	}
	if r.Clocks[1].Stall != 60 || r.Clocks[1].Now != 100 {
		t.Errorf("padding wrong: %+v", r.Clocks[1])
	}
}

// TestSimulateGraphMatchesOracle: the virtual executor must leave exactly
// the state a real parallel execution (and the oracle) would.
func TestSimulateGraphMatchesOracle(t *testing.T) {
	p := workload.DefaultSLParams()
	p.Rows, p.AbortRatio = 512, 0.2
	gen := workload.NewSL(p)
	st := store.New(gen.App().Tables())
	o := oracle.New(gen.App())
	events := workload.Batch(gen, 1500)
	txns := make([]*types.Txn, len(events))
	for i := range events {
		txn := gen.App().Preprocess(events[i])
		txns[i] = &txn
		o.Apply(events[i])
	}
	g := tpg.Build(txns, st.Get)
	for _, ch := range g.ChainList {
		ch.Owner = scheduler.HashAssign(4)(ch)
	}
	result := SimulateGraph(g, st, 4, Calibrate())
	if result.Makespan <= 0 {
		t.Fatal("zero makespan for non-empty graph")
	}
	for _, spec := range gen.App().Tables() {
		for row := uint32(0); row < spec.Rows; row++ {
			k := types.Key{Table: spec.ID, Row: row}
			if st.Get(k) != o.Value(k) {
				t.Fatalf("state diverged at %v: %d vs %d", k, st.Get(k), o.Value(k))
			}
		}
	}
}

// TestSimulateGraphDeterministic: identical inputs must produce identical
// clocks — the property that makes figures reproducible across hosts.
func TestSimulateGraphDeterministic(t *testing.T) {
	run := func() Result {
		p := workload.DefaultGSParams()
		p.Rows = 512
		gen := workload.NewGS(p)
		st := store.New(gen.App().Tables())
		events := workload.Batch(gen, 800)
		txns := make([]*types.Txn, len(events))
		for i := range events {
			txn := gen.App().Preprocess(events[i])
			txns[i] = &txn
		}
		g := tpg.Build(txns, st.Get)
		for _, ch := range g.ChainList {
			ch.Owner = scheduler.HashAssign(4)(ch)
		}
		return SimulateGraph(g, st, 4, Costs{Op: 100, PerDep: 10, Explore: 5, Sync: 50})
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			t.Fatalf("clock %d differs: %+v vs %+v", i, a.Clocks[i], b.Clocks[i])
		}
	}
}

// TestSimulateGraphParallelismHelps: a dependency-free graph's makespan
// must shrink roughly linearly with workers; a single serial chain's must
// not shrink at all.
func TestSimulateGraphParallelismHelps(t *testing.T) {
	costs := Costs{Op: 1000, Explore: 0}
	mkIndependent := func(owners int) time.Duration {
		st := store.New([]types.TableSpec{{ID: 0, Rows: 1024}})
		txns := make([]*types.Txn, 1024)
		for i := range txns {
			id := uint64(i)
			txns[i] = &types.Txn{ID: id, TS: id, Ops: []types.Operation{
				{TxnID: id, TS: id, Idx: 0, Key: types.Key{Row: uint32(i)}, Fn: types.FnAdd, Const: 1},
			}}
		}
		g := tpg.Build(txns, st.Get)
		for i, ch := range g.ChainList {
			ch.Owner = i % owners
		}
		return SimulateGraph(g, st, owners, costs).Makespan
	}
	m1, m4 := mkIndependent(1), mkIndependent(4)
	if m4 <= m1/5 || m4 >= m1/3 {
		t.Errorf("independent ops: makespan w1=%v w4=%v, want ~4x speedup", m1, m4)
	}

	mkChain := func(workers int) time.Duration {
		st := store.New([]types.TableSpec{{ID: 0, Rows: 1}})
		txns := make([]*types.Txn, 512)
		for i := range txns {
			id := uint64(i)
			txns[i] = &types.Txn{ID: id, TS: id, Ops: []types.Operation{
				{TxnID: id, TS: id, Idx: 0, Key: types.Key{Row: 0}, Fn: types.FnAdd, Const: 1},
			}}
		}
		g := tpg.Build(txns, st.Get)
		for _, ch := range g.ChainList {
			ch.Owner = 0
		}
		return SimulateGraph(g, st, workers, costs).Makespan
	}
	c1, c4 := mkChain(1), mkChain(4)
	if c4 != c1 {
		t.Errorf("serial chain: makespan w1=%v w4=%v; a chain cannot parallelize", c1, c4)
	}
}

// TestSimulateGraphSyncCharged: cross-worker dependencies cost Sync;
// co-located ones do not.
func TestSimulateGraphSyncCharged(t *testing.T) {
	mk := func(sameWorker bool) time.Duration {
		st := store.New([]types.TableSpec{{ID: 0, Rows: 2, Init: 100}})
		a, b := types.Key{Row: 0}, types.Key{Row: 1}
		txns := []*types.Txn{
			{ID: 0, TS: 0, Ops: []types.Operation{{TxnID: 0, TS: 0, Idx: 0, Key: a, Fn: types.FnAdd, Const: 1}}},
			{ID: 1, TS: 1, Ops: []types.Operation{{TxnID: 1, TS: 1, Idx: 0, Key: b, Fn: types.FnGuardedAdd, Const: 1, Deps: []types.Key{a}}}},
		}
		g := tpg.Build(txns, st.Get)
		for i, ch := range g.ChainList {
			if sameWorker {
				ch.Owner = 0
			} else {
				ch.Owner = i % 2
			}
		}
		r := SimulateGraph(g, st, 2, Costs{Op: 100, Sync: 77})
		var explore time.Duration
		for _, c := range r.Clocks {
			explore += c.Explore
		}
		return explore
	}
	if got := mk(true); got != 0 {
		t.Errorf("co-located dependency charged %v explore, want 0", got)
	}
	if got := mk(false); got != 77 {
		t.Errorf("cross-worker dependency charged %v explore, want 77ns", got)
	}
}

// TestSimulateTxnGraph: graph-constrained transaction replay respects
// dependencies and bounds parallelism.
func TestSimulateTxnGraph(t *testing.T) {
	// Chain of 4 dependent transactions + 4 independent ones, 2 workers.
	g := &TxnGraph{
		Out:      [][]int32{{1}, {2}, {3}, nil, nil, nil, nil, nil},
		Indegree: []int32{0, 1, 1, 1, 0, 0, 0, 0},
	}
	order := []int32{}
	r := SimulateTxnGraph(g, 2, func(i int32) (time.Duration, time.Duration, bool) {
		order = append(order, i)
		return 100, 0, false
	})
	if len(order) != 8 {
		t.Fatalf("executed %d of 8", len(order))
	}
	pos := map[int32]int{}
	for p, i := range order {
		pos[i] = p
	}
	for i := int32(0); i < 3; i++ {
		if pos[i] > pos[i+1] {
			t.Fatalf("dependency order violated: %d after %d", i, i+1)
		}
	}
	// Critical path = 4 chained txns = 400ns; greedy list scheduling may
	// delay the chain behind already-ready work, but never beyond one
	// extra slot per chain step.
	if r.Makespan < 400 || r.Makespan > 500 {
		t.Errorf("makespan = %v, want within [400ns, 500ns]", r.Makespan)
	}
}

func TestSimulateTxnGraphEmpty(t *testing.T) {
	r := SimulateTxnGraph(&TxnGraph{}, 3, func(int32) (time.Duration, time.Duration, bool) {
		t.Fatal("exec called on empty graph")
		return 0, 0, false
	})
	if r.Makespan != 0 {
		t.Errorf("empty graph makespan = %v", r.Makespan)
	}
}

func TestChargeMapsStalls(t *testing.T) {
	r := Result{Clocks: []Clock{{Execute: 10, Explore: 2, Abort: 3, Stall: 5}}}
	var bd1 metrics.RecoveryBreakdown
	r.Charge(&bd1, false)
	if bd1.Wait != 5 || bd1.Explore != 2 || bd1.Execute != 10 || bd1.Abort != 3 {
		t.Errorf("stall->wait mapping: %+v", bd1)
	}
	var bd2 metrics.RecoveryBreakdown
	r.Charge(&bd2, true)
	if bd2.Wait != 0 || bd2.Explore != 7 {
		t.Errorf("stall->explore mapping: %+v", bd2)
	}
}
