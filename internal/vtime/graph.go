package vtime

import (
	"container/heap"
	"time"

	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
)

// SimulateGraph replays a task precedence graph: operations execute for
// real (via tpg.Fire, in a dependency-respecting order, so the store ends
// up exactly as a parallel execution would leave it) while a W-worker
// list schedule is simulated in virtual time.
//
// Chain ownership must already be set (Chain.Owner); an operation runs on
// its chain's worker, starting no earlier than the virtual finish time of
// every dependency. Stalls — a worker idle because its next operation
// waits on another worker's unfinished producer — accumulate in Clock.
// Stall, the quantity MorphStreamR's restructuring eliminates.
func SimulateGraph(g *tpg.Graph, st *store.Store, workers int, costs Costs) Result {
	return SimulateGraphProf(g, st, workers, costs, nil)
}

// blockRef remembers which producer last pushed a consumer's ready time
// forward, and over which edge kind — the stall attribution the profiler
// reports. Only the binding (latest-finishing) producer is kept.
type blockRef struct {
	edge EdgeKind
	src  *tpg.OpNode
}

// SimulateGraphProf is SimulateGraph with an attached profiler: it
// receives one Op event per fired operation — start time, explore and
// busy cost, the stall-causing edge and blocking operation, and the
// operation's earliest finish on an unbounded machine (the critical-path
// bound). A nil profiler dispatches to simulateGraphFast, the original
// uninstrumented loop, so profiling off costs nothing on the hot path.
//
// The critical-path recurrence ef[n] = max(ef[producers]) + Explore + op
// cost deliberately excludes Sync charges: cross-worker synchronisation
// depends on chain ownership (the schedule), not the graph, so including
// it would make the "lower bound" depend on the very assignment being
// evaluated. Actual explore ≥ Explore always, so the bound stays valid.
func SimulateGraphProf(g *tpg.Graph, st *store.Store, workers int, costs Costs, prof *Profiler) Result {
	if prof == nil {
		return simulateGraphFast(g, st, workers, costs)
	}
	clocks := make([]Clock, workers)
	if g.NumOps == 0 {
		return Finish(clocks)
	}
	ready := make([]opHeap, workers)

	// Deterministic sequence numbers for tie-breaking.
	seq := make(map[*tpg.OpNode]int, g.NumOps)
	readyAt := make(map[*tpg.OpNode]time.Duration, g.NumOps)
	ef := make(map[*tpg.OpNode]time.Duration, g.NumOps)
	blocked := make(map[*tpg.OpNode]blockRef, g.NumOps)
	i := 0
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			seq[n] = i
			i++
		}
	}
	for _, ch := range g.ChainList {
		for _, n := range ch.Ops {
			if n.Pending() == 0 {
				heap.Push(&ready[ch.Owner], opItem{node: n, readyAt: 0, seq: seq[n]})
			}
		}
	}

	remaining := g.NumOps
	for remaining > 0 {
		// Pick the worker whose next operation can start earliest.
		best, bestStart := -1, time.Duration(0)
		for w := range ready {
			if len(ready[w]) == 0 {
				continue
			}
			start := clocks[w].Now
			if ra := ready[w][0].readyAt; ra > start {
				start = ra
			}
			if best == -1 || start < bestStart {
				best, bestStart = w, start
			}
		}
		if best == -1 {
			// Every remaining operation is blocked: impossible for an
			// acyclic graph whose producers resolve on finish.
			panic("vtime: no runnable operations with work remaining (cyclic graph?)")
		}
		item := heap.Pop(&ready[best]).(opItem)
		n := item.node

		tpg.Fire(n, st)
		// Dependencies resolved across workers cost a synchronisation
		// round-trip each; same-worker resolution is free beyond the
		// regular explore overhead.
		explore := costs.Explore
		for _, src := range n.PDSrc {
			if src != nil && src.Chain.Owner != n.Chain.Owner {
				explore += costs.Sync
			}
		}
		if n.CondSrc != nil && n.CondSrc.Chain.Owner != n.Chain.Owner {
			explore += costs.Sync
		}
		cost := costs.Op + time.Duration(len(n.DepVals))*costs.PerDep
		aborted := n.Txn.Aborted()
		fin := clocks[best].Advance(bestStart, explore, cost, aborted)
		remaining--

		efFin := ef[n] + costs.Explore + cost
		ef[n] = efFin
		edge, blockerLabel := EdgeNone, ""
		if b, ok := blocked[n]; ok {
			edge = b.edge
			blockerLabel = b.src.Ref()
		}
		prof.Op(best, n.Ref(), bestStart, explore, cost, aborted, edge, blockerLabel, efFin)

		notify := func(d *tpg.OpNode, edge EdgeKind) {
			if fin > readyAt[d] {
				readyAt[d] = fin
				blocked[d] = blockRef{edge: edge, src: n}
			}
			if e := ef[n]; e > ef[d] {
				ef[d] = e
			}
			if d.AddPending(-1) == 0 {
				heap.Push(&ready[d.Chain.Owner], opItem{node: d, readyAt: readyAt[d], seq: seq[d]})
			}
		}
		if nx := n.ChainNext; nx != nil {
			notify(nx, EdgeTD)
		}
		for _, d := range n.LDOut {
			notify(d, EdgeLD)
		}
		for _, d := range n.PDOut {
			notify(d, EdgePD)
		}
	}
	return Finish(clocks)
}

// simulateGraphFast is the profiling-off hot path: the list scheduler
// exactly as it runs with no profiler attached — no critical-path maps,
// no attribution, no per-op labels. SimulateGraphProf dispatches here on a
// nil profiler so that profiling off costs nothing over the original
// simulator (cmd/recoverytrace measures this against a frozen replica and
// budgets it at 2%). Keep the scheduling decisions in lockstep with the
// instrumented loop above: both must produce identical clocks, or the
// profiler would be observing a different schedule than the one reported.
func simulateGraphFast(g *tpg.Graph, st *store.Store, workers int, costs Costs) Result {
	clocks := make([]Clock, workers)
	if g.NumOps == 0 {
		return Finish(clocks)
	}
	ready := make([]opHeap, workers)
	seq := make(map[*tpg.OpNode]int, g.NumOps)
	readyAt := make(map[*tpg.OpNode]time.Duration, g.NumOps)
	i := 0
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			seq[n] = i
			i++
		}
	}
	for _, ch := range g.ChainList {
		for _, n := range ch.Ops {
			if n.Pending() == 0 {
				heap.Push(&ready[ch.Owner], opItem{node: n, readyAt: 0, seq: seq[n]})
			}
		}
	}

	remaining := g.NumOps
	for remaining > 0 {
		best, bestStart := -1, time.Duration(0)
		for w := range ready {
			if len(ready[w]) == 0 {
				continue
			}
			start := clocks[w].Now
			if ra := ready[w][0].readyAt; ra > start {
				start = ra
			}
			if best == -1 || start < bestStart {
				best, bestStart = w, start
			}
		}
		if best == -1 {
			panic("vtime: no runnable operations with work remaining (cyclic graph?)")
		}
		item := heap.Pop(&ready[best]).(opItem)
		n := item.node

		tpg.Fire(n, st)
		explore := costs.Explore
		for _, src := range n.PDSrc {
			if src != nil && src.Chain.Owner != n.Chain.Owner {
				explore += costs.Sync
			}
		}
		if n.CondSrc != nil && n.CondSrc.Chain.Owner != n.Chain.Owner {
			explore += costs.Sync
		}
		cost := costs.Op + time.Duration(len(n.DepVals))*costs.PerDep
		fin := clocks[best].Advance(bestStart, explore, cost, n.Txn.Aborted())
		remaining--

		resolve := func(d *tpg.OpNode) {
			if fin > readyAt[d] {
				readyAt[d] = fin
			}
			if d.AddPending(-1) == 0 {
				heap.Push(&ready[d.Chain.Owner], opItem{node: d, readyAt: readyAt[d], seq: seq[d]})
			}
		}
		if nx := n.ChainNext; nx != nil {
			resolve(nx)
		}
		for _, d := range n.LDOut {
			resolve(d)
		}
		for _, d := range n.PDOut {
			resolve(d)
		}
	}
	return Finish(clocks)
}

// opItem orders a worker's ready operations by readiness time, then by
// deterministic sequence.
type opItem struct {
	node    *tpg.OpNode
	readyAt time.Duration
	seq     int
}

type opHeap []opItem

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}
func (h opHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x any)     { *h = append(*h, x.(opItem)) }
func (h *opHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
