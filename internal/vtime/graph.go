package vtime

import (
	"container/heap"
	"time"

	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
)

// SimulateGraph replays a task precedence graph: operations execute for
// real (via tpg.Fire, in a dependency-respecting order, so the store ends
// up exactly as a parallel execution would leave it) while a W-worker
// list schedule is simulated in virtual time.
//
// Chain ownership must already be set (Chain.Owner); an operation runs on
// its chain's worker, starting no earlier than the virtual finish time of
// every dependency. Stalls — a worker idle because its next operation
// waits on another worker's unfinished producer — accumulate in Clock.
// Stall, the quantity MorphStreamR's restructuring eliminates.
func SimulateGraph(g *tpg.Graph, st *store.Store, workers int, costs Costs) Result {
	clocks := make([]Clock, workers)
	if g.NumOps == 0 {
		return Finish(clocks)
	}
	ready := make([]opHeap, workers)

	// Deterministic sequence numbers for tie-breaking.
	seq := make(map[*tpg.OpNode]int, g.NumOps)
	readyAt := make(map[*tpg.OpNode]time.Duration, g.NumOps)
	i := 0
	for _, tn := range g.Txns {
		for _, n := range tn.Ops {
			seq[n] = i
			i++
		}
	}
	for _, ch := range g.ChainList {
		for _, n := range ch.Ops {
			if n.Pending() == 0 {
				heap.Push(&ready[ch.Owner], opItem{node: n, readyAt: 0, seq: seq[n]})
			}
		}
	}

	remaining := g.NumOps
	for remaining > 0 {
		// Pick the worker whose next operation can start earliest.
		best, bestStart := -1, time.Duration(0)
		for w := range ready {
			if len(ready[w]) == 0 {
				continue
			}
			start := clocks[w].Now
			if ra := ready[w][0].readyAt; ra > start {
				start = ra
			}
			if best == -1 || start < bestStart {
				best, bestStart = w, start
			}
		}
		if best == -1 {
			// Every remaining operation is blocked: impossible for an
			// acyclic graph whose producers resolve on finish.
			panic("vtime: no runnable operations with work remaining (cyclic graph?)")
		}
		item := heap.Pop(&ready[best]).(opItem)
		n := item.node

		tpg.Fire(n, st)
		// Dependencies resolved across workers cost a synchronisation
		// round-trip each; same-worker resolution is free beyond the
		// regular explore overhead.
		explore := costs.Explore
		for _, src := range n.PDSrc {
			if src != nil && src.Chain.Owner != n.Chain.Owner {
				explore += costs.Sync
			}
		}
		if n.CondSrc != nil && n.CondSrc.Chain.Owner != n.Chain.Owner {
			explore += costs.Sync
		}
		cost := costs.Op + time.Duration(len(n.DepVals))*costs.PerDep
		fin := clocks[best].Advance(bestStart, explore, cost, n.Txn.Aborted())
		remaining--

		resolveInto(n, fin, seq, readyAt, ready)
	}
	return Finish(clocks)
}

// resolveInto notifies n's dependents that it finished at fin, pushing the
// newly ready ones onto their owners' heaps.
func resolveInto(n *tpg.OpNode, fin time.Duration, seq map[*tpg.OpNode]int,
	readyAt map[*tpg.OpNode]time.Duration, ready []opHeap) {
	notify := func(d *tpg.OpNode) {
		if fin > readyAt[d] {
			readyAt[d] = fin
		}
		if d.AddPending(-1) == 0 {
			heap.Push(&ready[d.Chain.Owner], opItem{node: d, readyAt: readyAt[d], seq: seq[d]})
		}
	}
	if nx := n.ChainNext; nx != nil {
		notify(nx)
	}
	for _, d := range n.LDOut {
		notify(d)
	}
	for _, d := range n.PDOut {
		notify(d)
	}
}

// opItem orders a worker's ready operations by readiness time, then by
// deterministic sequence.
type opItem struct {
	node    *tpg.OpNode
	readyAt time.Duration
	seq     int
}

type opHeap []opItem

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].seq < h[j].seq
}
func (h opHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x any)     { *h = append(*h, x.(opItem)) }
func (h *opHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
