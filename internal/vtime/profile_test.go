package vtime

import (
	"testing"
	"time"

	"morphstreamr/internal/scheduler"
	"morphstreamr/internal/store"
	"morphstreamr/internal/tpg"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// TestSetCalibrationSeam: the determinism seam must make Calibrate return
// the pinned model verbatim, and must be re-pinnable (the trace driver sets
// FixedCosts once at startup; tests restore whatever was active before).
func TestSetCalibrationSeam(t *testing.T) {
	prev := Calibrate()
	t.Cleanup(func() { SetCalibration(prev) })

	fixed := FixedCosts()
	SetCalibration(fixed)
	if got := Calibrate(); got != fixed {
		t.Fatalf("Calibrate after SetCalibration = %+v, want the pinned %+v", got, fixed)
	}
	if got := Calibrate(); got != fixed {
		t.Fatal("pinned calibration must stay stable across calls")
	}
}

// TestFixedCostsRatios pins the component ratios of the host-independent
// cost model. The ratios are the documented modelling assumptions
// (DESIGN.md §1); if one changes, every committed BENCH_recovery.json
// baseline silently shifts, so the change must be deliberate.
func TestFixedCostsRatios(t *testing.T) {
	c := FixedCosts()
	base := c.Build
	if base != 32*time.Nanosecond {
		t.Fatalf("FixedCosts base = %v, want 32ns", base)
	}
	checks := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"Op", c.Op, ExecFactor * base},
		{"PerDep", c.PerDep, ExecFactor * base / 8},
		{"Sync", c.Sync, ExecFactor * base},
		{"Explore", c.Explore, base / 2},
		{"Record", c.Record, base},
		{"Edge", c.Edge, base / 3},
		{"Compare", c.Compare, base / 8},
		{"Lookup", c.Lookup, base / 4},
		{"Postprocess", c.Postprocess, c.Preprocess / 2},
		{"Pipeline", c.Pipeline, 6 * c.Preprocess},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("FixedCosts.%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}

	// Derived quantities are exact integers under the fixed model — the
	// property the committed benchmark baselines rely on.
	if got := c.SortCost(1024); got != 1024*10*c.Compare {
		t.Errorf("SortCost(1024) = %v, want %v", got, 1024*10*c.Compare)
	}
	if got := c.GraphCost(10, 25); got != 10*c.Preprocess+25*c.Build {
		t.Errorf("GraphCost(10,25) = %v", got)
	}
	txn := &types.Txn{Ops: []types.Operation{
		{Key: types.Key{Row: 0}, Fn: types.FnAdd},
		{Key: types.Key{Row: 1}, Fn: types.FnGuardedAdd, Deps: []types.Key{{Row: 0}}},
	}}
	if got := c.TxnCost(txn); got != 2*c.Op+c.PerDep {
		t.Errorf("TxnCost = %v, want %v", got, 2*c.Op+c.PerDep)
	}
}

// tinyCosts is the analytic cost model for the hand-built TPG tests: every
// op costs exactly 110ns (10 explore + 100 busy), cross-worker sync and
// per-dependency charges are zero, so expected makespans are small exact
// integers.
var tinyCosts = Costs{Op: 100, Explore: 10}

// buildTiny constructs a TPG from hand-written transactions and assigns
// chain owners by key row (chains are listed in key order).
func buildTiny(t *testing.T, txns []*types.Txn, rows uint32, owner func(row uint32) int) (*tpg.Graph, *store.Store) {
	t.Helper()
	st := store.New([]types.TableSpec{{ID: 0, Rows: rows, Init: 100}})
	g := tpg.Build(txns, st.Get)
	for _, ch := range g.ChainList {
		ch.Owner = owner(ch.Key.Row)
	}
	return g, st
}

func oneOp(id uint64, row uint32, deps ...types.Key) *types.Txn {
	fn := types.FnAdd
	if len(deps) > 0 {
		fn = types.FnGuardedAdd
	}
	return &types.Txn{ID: id, TS: id, Ops: []types.Operation{
		{TxnID: id, TS: id, Idx: 0, Key: types.Key{Row: row}, Fn: fn, Const: 1, Deps: deps},
	}}
}

// runTiny simulates the graph under a fresh profiler and validates the
// invariants every profile must satisfy before returning it.
func runTiny(t *testing.T, txns []*types.Txn, rows uint32, workers int, owner func(row uint32) int) (Result, Profile) {
	t.Helper()
	g, st := buildTiny(t, txns, rows, owner)
	prof := NewProfiler(workers)
	r := SimulateGraphProf(g, st, workers, tinyCosts, prof)
	p := prof.Profile()
	if err := p.Consistent(); err != nil {
		t.Fatalf("inconsistent decomposition: %v", err)
	}
	if p.Timeline != r.Makespan {
		t.Fatalf("profile timeline %v != simulated makespan %v", p.Timeline, r.Makespan)
	}
	if r.Makespan < p.LowerBound {
		t.Fatalf("makespan %v below lower bound %v", r.Makespan, p.LowerBound)
	}
	return r, p
}

// TestCritPathChain: N ops on one key form a pure TD chain. The critical
// path equals the serial work, so no worker count can beat it — makespan
// stays N*(explore+op) for W=1, 2, and "infinity" (W=N).
func TestCritPathChain(t *testing.T) {
	const n = 8
	mk := func() []*types.Txn {
		txns := make([]*types.Txn, n)
		for i := range txns {
			txns[i] = oneOp(uint64(i), 0)
		}
		return txns
	}
	want := time.Duration(n) * 110 // analytic: chain serializes fully
	for _, w := range []int{1, 2, n} {
		r, p := runTiny(t, mk(), 1, w, func(uint32) int { return 0 })
		if r.Makespan != want {
			t.Errorf("chain W=%d makespan = %v, want %v", w, r.Makespan, want)
		}
		if p.CritPath != want {
			t.Errorf("chain W=%d critical path = %v, want %v", w, p.CritPath, want)
		}
		if p.LowerBound != want || p.CPRatio != 1.0 {
			t.Errorf("chain W=%d lb=%v ratio=%v, want lb=%v ratio=1", w, p.LowerBound, p.CPRatio, want)
		}
	}
}

// TestCritPathFanOut: K independent single-op transactions. The critical
// path is one op; the makespan is bounded by work/W and reaches the
// critical path at W=K.
func TestCritPathFanOut(t *testing.T) {
	const k = 8
	mk := func() []*types.Txn {
		txns := make([]*types.Txn, k)
		for i := range txns {
			txns[i] = oneOp(uint64(i), uint32(i))
		}
		return txns
	}
	for _, tc := range []struct {
		workers  int
		makespan time.Duration
	}{
		{1, k * 110},     // all on one lane: pure work-bound
		{2, k / 2 * 110}, // even split: work/W
		{k, 110},         // one op per lane: critical-path-bound
	} {
		r, p := runTiny(t, mk(), k, tc.workers, func(row uint32) int { return int(row) % tc.workers })
		if r.Makespan != tc.makespan {
			t.Errorf("fan-out W=%d makespan = %v, want %v", tc.workers, r.Makespan, tc.makespan)
		}
		if p.CritPath != 110 {
			t.Errorf("fan-out W=%d critical path = %v, want 110ns", tc.workers, p.CritPath)
		}
		if r.Makespan != p.LowerBound {
			t.Errorf("fan-out W=%d makespan %v != lower bound %v (list scheduling is optimal here)",
				tc.workers, r.Makespan, p.LowerBound)
		}
	}
}

// TestCritPathDiamond: A -> {B, C} -> D over parametric dependencies. The
// critical path is three levels (330ns); W=1 is work-bound (440ns), W>=2
// runs B and C concurrently and hits the critical path exactly.
func TestCritPathDiamond(t *testing.T) {
	a, b, c := types.Key{Row: 0}, types.Key{Row: 1}, types.Key{Row: 2}
	mk := func() []*types.Txn {
		return []*types.Txn{
			oneOp(0, 0),       // A
			oneOp(1, 1, a),    // B depends on A
			oneOp(2, 2, a),    // C depends on A
			oneOp(3, 3, b, c), // D depends on B and C
		}
	}
	const cp = 3 * 110
	for _, tc := range []struct {
		workers  int
		makespan time.Duration
	}{
		{1, 4 * 110}, // serial: total work
		{2, cp},      // B and C overlap; D waits for both
		{4, cp},      // extra lanes cannot beat the path
	} {
		r, p := runTiny(t, mk(), 4, tc.workers, func(row uint32) int { return int(row) % tc.workers })
		if r.Makespan != tc.makespan {
			t.Errorf("diamond W=%d makespan = %v, want %v", tc.workers, r.Makespan, tc.makespan)
		}
		if p.CritPath != cp {
			t.Errorf("diamond W=%d critical path = %v, want %v", tc.workers, p.CritPath, time.Duration(cp))
		}
		if tc.workers > 1 {
			// D's lane idles until both producers finish: a PD-attributed
			// stall must appear (drain padding is attributed separately).
			if p.StallByEdge[EdgePD.String()] <= 0 {
				t.Errorf("diamond W=%d: no PD stall recorded: %v", tc.workers, p.StallByEdge)
			}
		}
	}
}

// TestSimulateGraphFastLockstep: the profiling-off fast path and the
// instrumented loop must make identical scheduling decisions — same
// makespan, same per-worker clocks — or the profiler would be reporting a
// schedule that never runs.
func TestSimulateGraphFastLockstep(t *testing.T) {
	build := func() (*tpg.Graph, *store.Store) {
		p := workload.DefaultSLParams()
		p.Rows = 256
		gen := workload.NewSL(p)
		st := store.New(gen.App().Tables())
		events := workload.Batch(gen, 600)
		txns := make([]*types.Txn, len(events))
		for i := range events {
			txn := gen.App().Preprocess(events[i])
			txns[i] = &txn
		}
		g := tpg.Build(txns, st.Get)
		assign := scheduler.HashAssign(4)
		for _, ch := range g.ChainList {
			ch.Owner = assign(ch)
		}
		return g, st
	}
	costs := Costs{Op: 128, PerDep: 16, Explore: 16, Sync: 128}

	gFast, stFast := build()
	fast := SimulateGraphProf(gFast, stFast, 4, costs, nil) // dispatches to the fast path

	gProf, stProf := build()
	prof := NewProfiler(4)
	instrumented := SimulateGraphProf(gProf, stProf, 4, costs, prof)

	if fast.Makespan != instrumented.Makespan {
		t.Fatalf("fast makespan %v != instrumented %v", fast.Makespan, instrumented.Makespan)
	}
	for i := range fast.Clocks {
		if fast.Clocks[i] != instrumented.Clocks[i] {
			t.Fatalf("worker %d clock diverged: fast %+v vs instrumented %+v",
				i, fast.Clocks[i], instrumented.Clocks[i])
		}
	}
	p := prof.Profile()
	if err := p.Consistent(); err != nil {
		t.Fatal(err)
	}
	if p.Timeline != instrumented.Makespan {
		t.Fatalf("profile timeline %v != makespan %v", p.Timeline, instrumented.Makespan)
	}
}

// TestSerialPhaseAccounting: a serial phase must show exactly one active
// lane; the other lanes stall on a SERIAL edge attributed to the phase, and
// that stall counts as dependency stall (StallShare), not drain.
func TestSerialPhaseAccounting(t *testing.T) {
	prof := NewProfiler(4)
	prof.SerialPhase("decode+sort", 1000)
	p := prof.Profile()
	if err := p.Consistent(); err != nil {
		t.Fatal(err)
	}
	ph := p.Phase("decode+sort")
	if ph == nil {
		t.Fatal("missing phase")
	}
	if ph.ActiveLanes != 1 {
		t.Errorf("serial phase active lanes = %d, want 1", ph.ActiveLanes)
	}
	if ph.Makespan != 1000 || ph.Work != 1000 {
		t.Errorf("serial phase makespan=%v work=%v, want 1000/1000", ph.Makespan, ph.Work)
	}
	if got := p.StallByEdge[EdgeSerial.String()]; got != 3*1000 {
		t.Errorf("serial stall = %v, want 3000ns (three idle lanes)", got)
	}
	if share := p.StallShare(); share != 0.75 {
		t.Errorf("StallShare = %v, want 0.75", share)
	}
	if p.DrainShare() != 0 {
		t.Errorf("DrainShare = %v, want 0", p.DrainShare())
	}
}

// TestSpreadPhaseAccounting: spread work divides evenly; every lane is
// active and nothing stalls.
func TestSpreadPhaseAccounting(t *testing.T) {
	prof := NewProfiler(4)
	prof.SpreadPhase("view-decode", 4000)
	p := prof.Profile()
	if err := p.Consistent(); err != nil {
		t.Fatal(err)
	}
	ph := p.Phase("view-decode")
	if ph == nil || ph.ActiveLanes != 4 || ph.Makespan != 1000 {
		t.Fatalf("spread phase wrong: %+v", ph)
	}
	if p.StallShare() != 0 || p.DrainShare() != 0 {
		t.Errorf("spread phase stalls: dep=%v drain=%v", p.StallShare(), p.DrainShare())
	}
}

// TestDrainExcludedFromStallShare: end-of-phase load imbalance is drain,
// not a dependency stall — one lane working while the other idles must
// yield StallShare 0 and DrainShare 0.5.
func TestDrainExcludedFromStallShare(t *testing.T) {
	prof := NewProfiler(2)
	prof.BeginPhase("replay")
	prof.Op(0, "t0.0", 0, 0, 500, false, EdgeNone, "", 500)
	prof.EndPhase(500)
	p := prof.Profile()
	if err := p.Consistent(); err != nil {
		t.Fatal(err)
	}
	if p.StallShare() != 0 {
		t.Errorf("StallShare = %v, want 0 (drain only)", p.StallShare())
	}
	if p.DrainShare() != 0.5 {
		t.Errorf("DrainShare = %v, want 0.5", p.DrainShare())
	}
	if got := p.StallByEdge[EdgeDrain.String()]; got != 500 {
		t.Errorf("drain total = %v, want 500ns", got)
	}
}

// TestNilProfilerSafe: every profiler method must be a no-op on nil — the
// recovery paths call them unconditionally.
func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	p.BeginPhase("x")
	p.Op(0, "l", 0, 1, 2, false, EdgeTD, "b", 3)
	p.StallUntil(1, 10, EdgeSerial, "x")
	p.EndPhase(10)
	p.SerialPhase("s", 10)
	p.SpreadPhase("sp", 10)
	if p.Lanes() != 0 {
		t.Error("nil profiler lanes != 0")
	}
	if spans, dropped := p.Spans(); spans != nil || dropped != 0 {
		t.Error("nil profiler spans not empty")
	}
	pr := p.Profile()
	if pr.Timeline != 0 || len(pr.Phases) != 0 {
		t.Errorf("nil profiler profile not empty: %+v", pr)
	}
}
