package vtime

import (
	"container/heap"
	"strconv"
	"time"
)

// TxnGraph is a transaction-level precedence graph for virtual replay —
// the shape DL rebuilds from its log, and the shape LV's vectors encode
// implicitly. Nodes are identified by index.
type TxnGraph struct {
	// Out[i] lists the nodes depending on i; Indegree[i] counts i's
	// unresolved dependencies.
	Out      [][]int32
	Indegree []int32
}

// SimulateTxnGraph replays the graph on W virtual workers with greedy
// earliest-start list scheduling: any free worker takes the longest-ready
// transaction. exec(i) must execute node i for real and return its virtual
// cost plus whether it aborted; it is called exactly once per node, in an
// order that respects the graph.
//
// Parallelism is bounded by the graph itself — the paper's point about
// dependency-logging recovery being limited to the workload's inherent
// parallelism.
func SimulateTxnGraph(g *TxnGraph, workers int, exec func(i int32) (cost, explore time.Duration, abort bool)) Result {
	return SimulateTxnGraphProf(g, workers, exec, nil, nil)
}

// SimulateTxnGraphProf is SimulateTxnGraph with an attached profiler.
// label names node i for the timeline (nil falls back to "t<i>"). Unlike
// the operation-level simulator, a transaction node's explore charge here
// is schedule-independent (DL prices its logged indegree, LV its vector
// probes), so the critical-path recurrence includes it in full.
func SimulateTxnGraphProf(g *TxnGraph, workers int, exec func(i int32) (cost, explore time.Duration, abort bool), prof *Profiler, label func(i int32) string) Result {
	clocks := make([]Clock, workers)
	n := len(g.Indegree)
	if n == 0 {
		return Finish(clocks)
	}
	readyAt := make([]time.Duration, n)
	var efReady []time.Duration // max producer ef per node
	var blockedBy []int32       // binding producer per node (-1 = none)
	if prof != nil {
		efReady = make([]time.Duration, n)
		blockedBy = make([]int32, n)
		for i := range blockedBy {
			blockedBy[i] = -1
		}
		if label == nil {
			label = func(i int32) string { return "t" + strconv.Itoa(int(i)) }
		}
	}
	var ready txnHeap
	for i := 0; i < n; i++ {
		if g.Indegree[i] == 0 {
			heap.Push(&ready, txnItem{idx: int32(i), readyAt: 0})
		}
	}
	done := 0
	for done < n {
		if len(ready) == 0 {
			panic("vtime: no ready transactions with work remaining (cyclic log?)")
		}
		item := heap.Pop(&ready).(txnItem)
		// Earliest-available worker takes the transaction.
		best := 0
		for w := 1; w < workers; w++ {
			if clocks[w].Now < clocks[best].Now {
				best = w
			}
		}
		start := item.readyAt
		if clocks[best].Now > start {
			start = clocks[best].Now
		}
		cost, explore, aborted := exec(item.idx)
		fin := clocks[best].Advance(start, explore, cost, aborted)
		done++
		var efFin time.Duration
		if prof != nil {
			efFin = efReady[item.idx] + explore + cost
			edge, blocker := EdgeNone, ""
			if b := blockedBy[item.idx]; b >= 0 {
				edge, blocker = EdgeTxn, label(b)
			}
			prof.Op(best, label(item.idx), start, explore, cost, aborted, edge, blocker, efFin)
		}
		for _, j := range g.Out[item.idx] {
			if fin > readyAt[j] {
				readyAt[j] = fin
				if prof != nil {
					blockedBy[j] = item.idx
				}
			}
			if prof != nil && efFin > efReady[j] {
				efReady[j] = efFin
			}
			g.Indegree[j]--
			if g.Indegree[j] == 0 {
				heap.Push(&ready, txnItem{idx: j, readyAt: readyAt[j]})
			}
		}
	}
	return Finish(clocks)
}

type txnItem struct {
	idx     int32
	readyAt time.Duration
}

type txnHeap []txnItem

func (h txnHeap) Len() int { return len(h) }
func (h txnHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].idx < h[j].idx
}
func (h txnHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *txnHeap) Push(x any)     { *h = append(*h, x.(txnItem)) }
func (h *txnHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
