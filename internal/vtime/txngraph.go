package vtime

import (
	"container/heap"
	"time"
)

// TxnGraph is a transaction-level precedence graph for virtual replay —
// the shape DL rebuilds from its log, and the shape LV's vectors encode
// implicitly. Nodes are identified by index.
type TxnGraph struct {
	// Out[i] lists the nodes depending on i; Indegree[i] counts i's
	// unresolved dependencies.
	Out      [][]int32
	Indegree []int32
}

// SimulateTxnGraph replays the graph on W virtual workers with greedy
// earliest-start list scheduling: any free worker takes the longest-ready
// transaction. exec(i) must execute node i for real and return its virtual
// cost plus whether it aborted; it is called exactly once per node, in an
// order that respects the graph.
//
// Parallelism is bounded by the graph itself — the paper's point about
// dependency-logging recovery being limited to the workload's inherent
// parallelism.
func SimulateTxnGraph(g *TxnGraph, workers int, exec func(i int32) (cost, explore time.Duration, abort bool)) Result {
	clocks := make([]Clock, workers)
	n := len(g.Indegree)
	if n == 0 {
		return Finish(clocks)
	}
	readyAt := make([]time.Duration, n)
	var ready txnHeap
	for i := 0; i < n; i++ {
		if g.Indegree[i] == 0 {
			heap.Push(&ready, txnItem{idx: int32(i), readyAt: 0})
		}
	}
	done := 0
	for done < n {
		if len(ready) == 0 {
			panic("vtime: no ready transactions with work remaining (cyclic log?)")
		}
		item := heap.Pop(&ready).(txnItem)
		// Earliest-available worker takes the transaction.
		best := 0
		for w := 1; w < workers; w++ {
			if clocks[w].Now < clocks[best].Now {
				best = w
			}
		}
		start := item.readyAt
		if clocks[best].Now > start {
			start = clocks[best].Now
		}
		cost, explore, aborted := exec(item.idx)
		fin := clocks[best].Advance(start, explore, cost, aborted)
		done++
		for _, j := range g.Out[item.idx] {
			if fin > readyAt[j] {
				readyAt[j] = fin
			}
			g.Indegree[j]--
			if g.Indegree[j] == 0 {
				heap.Push(&ready, txnItem{idx: j, readyAt: readyAt[j]})
			}
		}
	}
	return Finish(clocks)
}

type txnItem struct {
	idx     int32
	readyAt time.Duration
}

type txnHeap []txnItem

func (h txnHeap) Len() int { return len(h) }
func (h txnHeap) Less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].idx < h[j].idx
}
func (h txnHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *txnHeap) Push(x any)     { *h = append(*h, x.(txnItem)) }
func (h *txnHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
