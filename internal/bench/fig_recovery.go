package bench

import (
	"fmt"
	"time"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/workload"
)

// recoveryKinds is the comparison set for recovery figures (NAT cannot
// recover).
func recoveryKinds() []ftapi.Kind {
	return []ftapi.Kind{ftapi.CKPT, ftapi.WAL, ftapi.DL, ftapi.LV, ftapi.MSR}
}

// Fig2 reproduces the motivating comparison (Figure 2): runtime throughput
// and recovery time of every applicable fault-tolerance approach on
// Streaming Ledger.
type Fig2Result struct {
	Runs map[ftapi.Kind]Run
}

// Fig2 runs the experiment.
func Fig2(scale Scale) (*Fig2Result, error) {
	res := &Fig2Result{Runs: make(map[ftapi.Kind]Run)}
	for _, kind := range ftapi.Kinds() {
		run, err := Execute(Scenario{Gen: func() workload.Generator { return SLFor(scale, 1) }, Kind: kind, Scale: scale, Repeat: 3})
		if err != nil {
			return nil, fmt.Errorf("fig2 %v: %w", kind, err)
		}
		res.Runs[kind] = run
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig2Result) Table() Table {
	nat := r.Runs[ftapi.NAT].RuntimeThroughput
	t := Table{
		Title:  "Figure 2: fault tolerance approaches on Streaming Ledger",
		Note:   "runtime throughput (events/s, % of native) and recovery time",
		Header: []string{"scheme", "runtime(ev/s)", "%NAT", "recovery(ms)", "rec-tput(ev/s)"},
	}
	for _, kind := range ftapi.Kinds() {
		run := r.Runs[kind]
		rec, recT := "-", "-"
		if run.Recovery != nil {
			rec = ms(run.Recovery.SimWall())
			recT = fnum(run.Recovery.Throughput())
		}
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fnum(run.RuntimeThroughput),
			fmt.Sprintf("%.0f%%", 100*run.RuntimeThroughput/nat),
			rec, recT,
		})
	}
	return t
}

// Fig11 reproduces the recovery-time breakdown (Figure 11a-c): per
// application and scheme, the six-way decomposition of recovery time.
type Fig11Result struct {
	// Breakdowns[app][kind] is normalized per worker (≈ wall-clock).
	Runs  map[string]map[ftapi.Kind]Run
	Scale Scale
}

// Fig11 runs the experiment.
func Fig11(scale Scale) (*Fig11Result, error) {
	res := &Fig11Result{Runs: make(map[string]map[ftapi.Kind]Run), Scale: scale}
	for _, app := range Apps() {
		res.Runs[app.Name] = make(map[ftapi.Kind]Run)
		for _, kind := range recoveryKinds() {
			run, err := Execute(Scenario{Gen: func() workload.Generator { return app.Make(scale, 1) }, Kind: kind, Scale: scale})
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%v: %w", app.Name, kind, err)
			}
			res.Runs[app.Name][kind] = run
		}
	}
	return res, nil
}

// Tables renders one table per application.
func (r *Fig11Result) Tables() []Table {
	var out []Table
	for _, app := range Apps() {
		t := Table{
			Title:  fmt.Sprintf("Figure 11: recovery time breakdown — %s", app.Name),
			Note:   "per-worker milliseconds (aggregate thread-time / workers); total = wall recovery",
			Header: []string{"scheme", "reload", "construct", "abort", "explore", "execute", "wait", "total(ms)"},
		}
		for _, kind := range recoveryKinds() {
			run := r.Runs[app.Name][kind]
			bd := run.Recovery.Breakdown.PerWorker(r.Scale.Workers)
			row := []string{kind.String()}
			for _, c := range bd.Components() {
				row = append(row, ms(c.D))
			}
			row = append(row, ms(bd.Total()))
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

// Fig11d reproduces the factor analysis (Figure 11d): MorphStreamR's
// recovery optimizations added incrementally.
type Fig11dResult struct {
	// RecoveryMS[app][step] in presentation order.
	Steps []string
	Times map[string]map[string]time.Duration
}

// Fig11d runs the experiment.
func Fig11d(scale Scale) (*Fig11dResult, error) {
	steps := []struct {
		name string
		opts msr.Options
	}{
		{"Simple", msr.Options{SelectiveLogging: true}},
		{"+OpRestructure", msr.Options{SelectiveLogging: true, OpRestructure: true}},
		{"+AbortPD", msr.Options{SelectiveLogging: true, OpRestructure: true, AbortPushdown: true}},
		{"+OptTaskAssign", msr.Default()},
	}
	res := &Fig11dResult{Times: make(map[string]map[string]time.Duration)}
	for _, s := range steps {
		res.Steps = append(res.Steps, s.name)
	}
	for _, app := range Apps() {
		res.Times[app.Name] = make(map[string]time.Duration)
		for _, s := range steps {
			opts := s.opts
			run, err := Execute(Scenario{
				Gen:  func() workload.Generator { return app.Make(scale, 1) },
				Kind: ftapi.MSR, Scale: scale, MSR: &opts,
			})
			if err != nil {
				return nil, fmt.Errorf("fig11d %s/%s: %w", app.Name, s.name, err)
			}
			res.Times[app.Name][s.name] = run.Recovery.SimWall()
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig11dResult) Table() Table {
	t := Table{
		Title:  "Figure 11d: factor analysis of MorphStreamR recovery (ms, lower is better)",
		Note:   "optimizations added incrementally left to right",
		Header: append([]string{"app"}, r.Steps...),
	}
	for _, app := range Apps() {
		row := []string{app.Name}
		for _, s := range r.Steps {
			row = append(row, ms(r.Times[app.Name][s]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13 reproduces the scalability study (Figure 13): recovery throughput
// as the worker count grows.
type Fig13Result struct {
	Workers []int
	// Tput[app][kind][i] aligns with Workers.
	Tput map[string]map[ftapi.Kind][]float64
}

// Fig13 runs the experiment.
func Fig13(scale Scale, workers []int) (*Fig13Result, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	res := &Fig13Result{Workers: workers, Tput: make(map[string]map[ftapi.Kind][]float64)}
	for _, app := range Apps() {
		res.Tput[app.Name] = make(map[ftapi.Kind][]float64)
		for _, kind := range recoveryKinds() {
			for _, w := range workers {
				s := scale
				s.Workers = w
				run, err := Execute(Scenario{Gen: func() workload.Generator { return app.Make(s, 1) }, Kind: kind, Scale: s})
				if err != nil {
					return nil, fmt.Errorf("fig13 %s/%v/w%d: %w", app.Name, kind, w, err)
				}
				res.Tput[app.Name][kind] = append(res.Tput[app.Name][kind], run.RecoveryThroughput())
			}
		}
	}
	return res, nil
}

// Tables renders one table per application.
func (r *Fig13Result) Tables() []Table {
	var out []Table
	for _, app := range Apps() {
		t := Table{
			Title:  fmt.Sprintf("Figure 13: recovery throughput vs cores — %s", app.Name),
			Note:   "events recovered per second",
			Header: []string{"scheme"},
		}
		for _, w := range r.Workers {
			t.Header = append(t.Header, fmt.Sprintf("w=%d", w))
		}
		for _, kind := range recoveryKinds() {
			row := []string{kind.String()}
			for _, v := range r.Tput[app.Name][kind] {
				row = append(row, fnum(v))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}

// Fig14 reproduces the workload sensitivity study (Figure 14) on Grep&Sum:
// multi-partition ratio (a), state access skewness (b), and aborting
// transactions (c), each reporting recovery throughput per scheme.
type Fig14Result struct {
	Axis   string
	Points []string
	// Tput[kind][i] aligns with Points.
	Tput map[ftapi.Kind][]float64
}

func fig14Run(scale Scale, p workload.GSParams, kind ftapi.Kind) (float64, error) {
	p.Partitions = scale.Workers
	run, err := Execute(Scenario{Gen: func() workload.Generator { return workload.NewGS(p) }, Kind: kind, Scale: scale})
	if err != nil {
		return 0, err
	}
	return run.RecoveryThroughput(), nil
}

// Fig14a sweeps the multi-partition transaction ratio with skew 0 and no
// aborts.
func Fig14a(scale Scale, ratios []float64) (*Fig14Result, error) {
	if len(ratios) == 0 {
		ratios = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	res := &Fig14Result{Axis: "multi-partition ratio", Tput: make(map[ftapi.Kind][]float64)}
	for _, r := range ratios {
		res.Points = append(res.Points, fmt.Sprintf("%.0f%%", 100*r))
	}
	for _, kind := range recoveryKinds() {
		for _, ratio := range ratios {
			p := workload.DefaultGSParams()
			p.Theta, p.AbortRatio, p.MultiPartitionRatio = 0, 0, ratio
			v, err := fig14Run(scale, p, kind)
			if err != nil {
				return nil, fmt.Errorf("fig14a %v/%.1f: %w", kind, ratio, err)
			}
			res.Tput[kind] = append(res.Tput[kind], v)
		}
	}
	return res, nil
}

// Fig14b sweeps state access skewness on a write-only workload.
func Fig14b(scale Scale, thetas []float64) (*Fig14Result, error) {
	if len(thetas) == 0 {
		thetas = []float64{0, 0.4, 0.8, 1.2}
	}
	res := &Fig14Result{Axis: "state access skew (theta)", Tput: make(map[ftapi.Kind][]float64)}
	for _, th := range thetas {
		res.Points = append(res.Points, fmt.Sprintf("%.1f", th))
	}
	for _, kind := range recoveryKinds() {
		for _, th := range thetas {
			p := workload.DefaultGSParams()
			p.Theta, p.AbortRatio, p.MultiPartitionRatio, p.WriteOnly = th, 0, 0, true
			v, err := fig14Run(scale, p, kind)
			if err != nil {
				return nil, fmt.Errorf("fig14b %v/%.1f: %w", kind, th, err)
			}
			res.Tput[kind] = append(res.Tput[kind], v)
		}
	}
	return res, nil
}

// Fig14c sweeps the percentage of events that trigger aborts.
func Fig14c(scale Scale, ratios []float64) (*Fig14Result, error) {
	if len(ratios) == 0 {
		ratios = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}
	res := &Fig14Result{Axis: "aborting transactions", Tput: make(map[ftapi.Kind][]float64)}
	for _, r := range ratios {
		res.Points = append(res.Points, fmt.Sprintf("%.0f%%", 100*r))
	}
	for _, kind := range recoveryKinds() {
		for _, ratio := range ratios {
			p := workload.DefaultGSParams()
			p.Theta, p.MultiPartitionRatio, p.AbortRatio = 0, 0.3, ratio
			v, err := fig14Run(scale, p, kind)
			if err != nil {
				return nil, fmt.Errorf("fig14c %v/%.1f: %w", kind, ratio, err)
			}
			res.Tput[kind] = append(res.Tput[kind], v)
		}
	}
	return res, nil
}

// Table renders a sensitivity sweep.
func (r *Fig14Result) Table(title string) Table {
	t := Table{
		Title:  title,
		Note:   "recovery throughput (events/s) on Grep&Sum, axis: " + r.Axis,
		Header: append([]string{"scheme"}, r.Points...),
	}
	for _, kind := range recoveryKinds() {
		row := []string{kind.String()}
		for _, v := range r.Tput[kind] {
			row = append(row, fnum(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
