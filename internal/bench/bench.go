// Package bench is the experiment harness behind every table and figure of
// the paper's evaluation (Section VIII). Each FigNN function reproduces one
// figure: it builds the paper's workload configuration, runs the engine
// through a snapshot-then-crash protocol under each fault-tolerance
// mechanism, and returns the measured series as a printable table.
//
// The crash protocol mirrors the paper's definition of recovery time
// ("the duration in which an application recovers from the latest
// checkpoint to the failure point"): the engine processes SnapshotEvery
// epochs (the last of which persists a checkpoint), then PostEpochs more,
// then crashes; recovery replays exactly the post-checkpoint epochs.
//
// Absolute numbers depend on the host; the claims these experiments
// reproduce are the paper's shapes — who wins, by what rough factor, and
// where the crossovers sit. EXPERIMENTS.md records both.
package bench

import (
	"fmt"
	"sort"
	"time"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/obs"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/types"
	"morphstreamr/internal/vtime"
	"morphstreamr/internal/workload"
)

// Scale sizes an experiment run. The defaults match the harness binary;
// the root bench_test.go shrinks them so `go test -bench` stays fast.
type Scale struct {
	// RunShape carries the engine knobs — Workers (runtime and recovery
	// parallelism), SnapshotEvery (the checkpoint interval; the crash
	// happens PostEpochs after the checkpoint), CommitEvery, AutoCommit,
	// and Pipeline — under the tree-wide defaulting rules. Experiments that
	// vary one knob copy the Scale and overwrite just that field.
	types.RunShape
	// BatchSize is the punctuation interval in events.
	BatchSize int
	// PostEpochs is the number of epochs between checkpoint and crash —
	// the volume recovery must replay.
	PostEpochs int
	// SSD applies the paper's storage performance envelope.
	SSD bool
	// Obs, when non-nil, wires the observability layer through every run
	// the scale shapes: epoch and recovery spans plus engine counters land
	// in its registry and tracer (served live by obs.Serve). Virtually
	// timed measurements are unaffected; wall-clock ones pay the span cost.
	Obs *obs.Observer
}

// DefaultScale returns the harness binary's configuration. Eight workers
// is deliberately above the low-core regime: the paper observes (and
// Figure 13 here reproduces) that WAL/DL/LV are competitive with
// MorphStreamR at very low core counts, with the separation appearing as
// cores grow.
func DefaultScale() Scale {
	return Scale{
		RunShape:  types.RunShape{Workers: 8, SnapshotEvery: 8},
		BatchSize: 4096, PostEpochs: 4, SSD: true,
	}
}

// QuickScale returns a reduced configuration for Go benchmarks and smoke
// tests.
func QuickScale() Scale {
	return Scale{
		RunShape:  types.RunShape{Workers: 4, SnapshotEvery: 4},
		BatchSize: 1024, PostEpochs: 2, SSD: false,
	}
}

// Run is the outcome of one scenario: runtime measurements from the
// pre-crash phase, and recovery measurements from the post-crash replay.
type Run struct {
	Kind ftapi.Kind
	// RuntimeThroughput is events/second during normal processing.
	RuntimeThroughput float64
	// Runtime is the fault-tolerance overhead breakdown (Figure 12d).
	Runtime metrics.RuntimeBreakdown
	// Recovery is nil for NAT (native execution cannot recover).
	Recovery *engine.RecoveryReport
	// PeakLiveBytes is the high-water in-memory artifact footprint
	// (Figure 12c); LogBytes the cumulative durable log volume.
	PeakLiveBytes int64
	LogBytes      int64
	// CommitEvery is the effective log commitment interval.
	CommitEvery int
	// Events is the total number of input events processed pre-crash.
	Events int
}

// RecoveryThroughput returns events recovered per second, or 0 for NAT.
func (r *Run) RecoveryThroughput() float64 {
	if r.Recovery == nil {
		return 0
	}
	return r.Recovery.Throughput()
}

// RecoveryTime returns the (simulated W-worker) recovery duration, or 0
// for NAT.
func (r *Run) RecoveryTime() time.Duration {
	if r.Recovery == nil {
		return 0
	}
	return r.Recovery.SimWall()
}

// Scenario fully describes one run.
type Scenario struct {
	// Gen constructs a fresh generator; repeated runs must see identical
	// streams, so the scenario owns construction.
	Gen   func() workload.Generator
	Kind  ftapi.Kind
	Scale Scale
	// MSR overrides MorphStreamR's options (nil = all optimizations on).
	MSR *msr.Options
	// AsyncCommit moves durable commits off the critical path (extension).
	AsyncCommit bool
	// Compression compresses durable payloads (extension).
	Compression bool
	// Repeat runs the scenario several times and reports the run with the
	// median runtime throughput, damping wall-clock noise on short runs.
	// Recovery measurements are virtually timed and already stable.
	// Zero means one run.
	Repeat int
	// Prof, when non-nil, profiles the recovery replay: per-virtual-worker
	// timelines, stall attribution, and critical-path bounds land in
	// Run.Recovery.Profile. Use with Repeat <= 1 — a profiler accumulates
	// phases across every recovery it observes.
	Prof *vtime.Profiler
}

// Execute runs the scenario: process SnapshotEvery+PostEpochs epochs,
// crash, recover. With Repeat > 1 the median-throughput run is reported.
func Execute(s Scenario) (Run, error) {
	n := s.Repeat
	if n < 1 {
		n = 1
	}
	runs := make([]Run, 0, n)
	for i := 0; i < n; i++ {
		r, err := executeOnce(s)
		if err != nil {
			return Run{}, err
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool {
		return runs[i].RuntimeThroughput < runs[j].RuntimeThroughput
	})
	return runs[len(runs)/2], nil
}

func executeOnce(s Scenario) (Run, error) {
	cfg := core.Config{
		RunShape:         s.Scale.RunShape,
		FT:               s.Kind,
		BatchSize:        s.Scale.BatchSize,
		AsyncCommit:      s.AsyncCommit,
		Compression:      s.Compression,
		MSR:              s.MSR,
		SSDModel:         s.Scale.SSD,
		Obs:              s.Scale.Obs,
		RecoveryProfiler: s.Prof,
	}
	gen := s.Gen()
	sys, err := core.New(gen.App(), cfg)
	if err != nil {
		return Run{}, err
	}
	total := s.Scale.SnapshotEvery + s.Scale.PostEpochs
	// Batches are drawn up front (the generator stream is identical either
	// way) and submitted as one run, so pipelined scenarios can overlap
	// adjacent epochs; without Pipeline this degenerates to the sequential
	// per-epoch loop.
	batches := make([][]types.Event, total)
	for i := range batches {
		batches[i] = workload.Batch(gen, s.Scale.BatchSize)
	}
	if err := sys.ProcessBatches(batches); err != nil {
		return Run{}, fmt.Errorf("process: %w", err)
	}
	out := Run{
		Kind:              s.Kind,
		RuntimeThroughput: sys.Engine.Throughput(),
		Runtime:           sys.Engine.Runtime(),
		PeakLiveBytes:     sys.Bytes().PeakLive(),
		LogBytes:          storage.SumBytes(sys.Cfg.Device.BytesWritten()),
		CommitEvery:       sys.Engine.CommitEvery(),
		Events:            sys.Engine.Events(),
	}
	if s.Kind == ftapi.NAT {
		return out, nil
	}
	sys.Crash()
	_, report, err := sys.Recover()
	if err != nil {
		return Run{}, fmt.Errorf("recover: %w", err)
	}
	out.Recovery = report
	return out, nil
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// fnum formats a float compactly.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// defaultMSR returns the fully enabled MorphStreamR options (a fresh copy
// callers may mutate).
func defaultMSR() msr.Options { return msr.Default() }
