package bench

import (
	"fmt"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/workload"
)

// Ext benchmarks the two Section VII extensions this repository
// implements beyond the paper's evaluation: asynchronous log commitment
// (off the critical path) and durable-log compression. For each logging
// scheme it reports runtime throughput and durable bytes for the baseline,
// the async-commit variant, and the compressed variant.
type ExtResult struct {
	Kinds []ftapi.Kind
	// Tput[kind][variant] in events/s; Bytes[kind][variant] durable bytes.
	Tput  map[ftapi.Kind]map[string]float64
	Bytes map[ftapi.Kind]map[string]int64
}

// ExtVariants lists the measured configurations.
func ExtVariants() []string { return []string{"baseline", "async", "compressed"} }

// Ext runs the extension ablation on Streaming Ledger.
func Ext(scale Scale) (*ExtResult, error) {
	res := &ExtResult{
		Kinds: []ftapi.Kind{ftapi.WAL, ftapi.LV, ftapi.MSR},
		Tput:  make(map[ftapi.Kind]map[string]float64),
		Bytes: make(map[ftapi.Kind]map[string]int64),
	}
	for _, kind := range res.Kinds {
		res.Tput[kind] = make(map[string]float64)
		res.Bytes[kind] = make(map[string]int64)
		for _, variant := range ExtVariants() {
			s := Scenario{
				Gen:  func() workload.Generator { return SLFor(scale, 1) },
				Kind: kind, Scale: scale, Repeat: 3,
			}
			switch variant {
			case "async":
				s.AsyncCommit = true
			case "compressed":
				s.Compression = true
			}
			run, err := Execute(s)
			if err != nil {
				return nil, fmt.Errorf("ext %v/%s: %w", kind, variant, err)
			}
			res.Tput[kind][variant] = run.RuntimeThroughput
			res.Bytes[kind][variant] = run.LogBytes
		}
	}
	return res, nil
}

// Table renders the ablation.
func (r *ExtResult) Table() Table {
	t := Table{
		Title: "Extensions (Section VII): async commit and log compression (SL)",
		Note:  "runtime events/s and durable KiB per scheme and variant",
		Header: []string{"scheme",
			"base(ev/s)", "async(ev/s)", "compressed(ev/s)",
			"base(KiB)", "async(KiB)", "compressed(KiB)"},
	}
	for _, kind := range r.Kinds {
		row := []string{kind.String()}
		for _, v := range ExtVariants() {
			row = append(row, fnum(r.Tput[kind][v]))
		}
		for _, v := range ExtVariants() {
			row = append(row, fmt.Sprintf("%d", r.Bytes[kind][v]/1024))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
