package bench

import (
	"testing"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// These tests pin the paper's qualitative claims — who wins, in which
// direction an axis bends — at a reduced scale. They deliberately assert
// only orderings that are robust across hosts; the absolute factors are
// recorded (not asserted) in EXPERIMENTS.md.

// shapeScale is small enough for the test suite yet large enough that the
// structural effects dominate noise.
func shapeScale() Scale {
	return Scale{
		RunShape:  types.RunShape{Workers: 8, SnapshotEvery: 4},
		BatchSize: 2048, PostEpochs: 2, SSD: false,
	}
}

func runKind(t *testing.T, kind ftapi.Kind, mk func(Scale, int64) workload.Generator) Run {
	t.Helper()
	scale := shapeScale()
	run, err := Execute(Scenario{
		Gen:  func() workload.Generator { return mk(scale, 1) },
		Kind: kind, Scale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestExecutePopulatesRun: the scenario runner fills every field.
func TestExecutePopulatesRun(t *testing.T) {
	run := runKind(t, ftapi.MSR, SLFor)
	if run.RuntimeThroughput <= 0 || run.Events == 0 {
		t.Errorf("runtime fields empty: %+v", run)
	}
	if run.Recovery == nil || run.Recovery.EventsReplayed == 0 {
		t.Fatal("recovery missing")
	}
	if run.LogBytes == 0 {
		t.Error("no durable bytes accounted")
	}
	nat := runKind(t, ftapi.NAT, SLFor)
	if nat.Recovery != nil {
		t.Error("NAT must not recover")
	}
	if nat.RecoveryThroughput() != 0 || nat.RecoveryTime() != 0 {
		t.Error("NAT recovery metrics must be zero")
	}
}

// TestWALRecoverySlowest: sequential redo makes WAL the slowest recovery
// on every application (Figures 2 and 11).
func TestWALRecoverySlowest(t *testing.T) {
	for _, app := range Apps() {
		wal := runKind(t, ftapi.WAL, app.Make)
		for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.LV, ftapi.MSR} {
			other := runKind(t, kind, app.Make)
			if wal.RecoveryTime() <= other.RecoveryTime() {
				t.Errorf("%s: WAL recovery (%v) not slower than %v (%v)",
					app.Name, wal.RecoveryTime(), kind, other.RecoveryTime())
			}
		}
	}
}

// TestDLConstructDominant: dependency-graph rebuild dominates DL's
// recovery relative to every other scheme (Figure 11).
func TestDLConstructDominant(t *testing.T) {
	dl := runKind(t, ftapi.DL, SLFor)
	for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.LV, ftapi.MSR} {
		other := runKind(t, kind, SLFor)
		if dl.Recovery.Breakdown.Construct <= other.Recovery.Breakdown.Construct {
			t.Errorf("DL construct (%v) not above %v construct (%v)",
				dl.Recovery.Breakdown.Construct, kind, other.Recovery.Breakdown.Construct)
		}
	}
}

// TestMSRLogsLessThanLVAndDL: intermediate-result views are smaller than
// LSN vectors and dependency-edge records (Figure 12c).
func TestMSRArtifactsSmaller(t *testing.T) {
	msrRun := runKind(t, ftapi.MSR, SLFor)
	for _, kind := range []ftapi.Kind{ftapi.DL, ftapi.LV} {
		other := runKind(t, kind, SLFor)
		if msrRun.LogBytes >= other.LogBytes {
			t.Errorf("MSR log bytes (%d) not below %v (%d)", msrRun.LogBytes, kind, other.LogBytes)
		}
		if msrRun.PeakLiveBytes >= other.PeakLiveBytes {
			t.Errorf("MSR peak bytes (%d) not below %v (%d)", msrRun.PeakLiveBytes, kind, other.PeakLiveBytes)
		}
	}
}

// TestScalingShapes: WAL cannot scale with workers; MSR must (Figure 13).
func TestScalingShapes(t *testing.T) {
	tput := func(kind ftapi.Kind, workers int) float64 {
		scale := shapeScale()
		scale.Workers = workers
		run, err := Execute(Scenario{
			Gen:  func() workload.Generator { return GSFor(scale, 1) },
			Kind: kind, Scale: scale,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run.RecoveryThroughput()
	}
	if w1, w8 := tput(ftapi.WAL, 1), tput(ftapi.WAL, 8); w8 > 1.5*w1 {
		t.Errorf("WAL scaled from %.0f to %.0f across 8 workers; sequential redo cannot scale", w1, w8)
	}
	if w1, w8 := tput(ftapi.MSR, 1), tput(ftapi.MSR, 8); w8 < 2*w1 {
		t.Errorf("MSR scaled only from %.0f to %.0f across 8 workers", w1, w8)
	}
}

// TestAbortAxisShapes: more aborting transactions speed up WAL (fewer
// committed commands to redo) — Figure 14c's most distinctive curve.
func TestAbortAxisShapes(t *testing.T) {
	tput := func(abort float64) float64 {
		scale := shapeScale()
		p := workload.DefaultGSParams()
		p.Theta, p.MultiPartitionRatio, p.AbortRatio = 0, 0.3, abort
		p.Partitions = scale.Workers
		run, err := Execute(Scenario{
			Gen:  func() workload.Generator { return workload.NewGS(p) },
			Kind: ftapi.WAL, Scale: scale,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run.RecoveryThroughput()
	}
	if lo, hi := tput(0), tput(0.8); hi <= lo {
		t.Errorf("WAL at 80%% aborts (%.0f ev/s) not faster than at 0%% (%.0f ev/s)", hi, lo)
	}
}

// TestAdvisorQuadrants: the workload-aware commitment advisor must pick
// long epochs for uncontended workloads and short ones for skewed ones
// (Figure 9's trade-off).
func TestAdvisorQuadrants(t *testing.T) {
	advised := func(theta, mp float64, reads int) int {
		scale := shapeScale()
		scale.SnapshotEvery = 8
		p := workload.DefaultGSParams()
		p.Theta, p.MultiPartitionRatio, p.Reads, p.AbortRatio = theta, mp, reads, 0
		p.Partitions = scale.Workers
		scale.AutoCommit = true
		run, err := Execute(Scenario{
			Gen:  func() workload.Generator { return workload.NewGS(p) },
			Kind: ftapi.MSR, Scale: scale,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run.CommitEvery
	}
	if got := advised(0, 0, 0); got != 8 {
		t.Errorf("LSFD advised %d, want 8", got)
	}
	if got := advised(1.2, 0.8, 3); got != 2 {
		t.Errorf("HSMD advised %d, want 2", got)
	}
}

// TestSelectiveLoggingWritesLess: with selective logging off, the view log
// must grow (Figure 12b's log-size axis).
func TestSelectiveLoggingWritesLess(t *testing.T) {
	logBytes := func(selective bool) int64 {
		scale := shapeScale()
		opts := defaultMSR()
		opts.SelectiveLogging = selective
		run, err := Execute(Scenario{
			Gen:  func() workload.Generator { return SLFor(scale, 1) },
			Kind: ftapi.MSR, Scale: scale, MSR: &opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run.LogBytes
	}
	sel, full := logBytes(true), logBytes(false)
	if sel >= full {
		t.Errorf("selective logging wrote %d bytes, full logging %d; selective must write less", sel, full)
	}
}

// TestFigureFunctionsRun: every figure function completes at quick scale —
// the harness itself must never bitrot.
func TestFigureFunctionsRun(t *testing.T) {
	scale := QuickScale()
	if _, err := Fig2(scale); err != nil {
		t.Errorf("Fig2: %v", err)
	}
	if _, err := Fig9(scale, []int{1, 2}); err != nil {
		t.Errorf("Fig9: %v", err)
	}
	if r, err := Fig11(scale); err != nil {
		t.Errorf("Fig11: %v", err)
	} else if len(r.Tables()) != 3 {
		t.Error("Fig11 must render one table per app")
	}
	if r, err := Fig11d(scale); err != nil {
		t.Errorf("Fig11d: %v", err)
	} else if len(r.Table().Rows) != 3 {
		t.Error("Fig11d must have one row per app")
	}
	if _, err := Fig12a(scale); err != nil {
		t.Errorf("Fig12a: %v", err)
	}
	if _, err := Fig12b(scale, []float64{0.2, 0.8}); err != nil {
		t.Errorf("Fig12b: %v", err)
	}
	if _, err := Fig12c(scale); err != nil {
		t.Errorf("Fig12c: %v", err)
	}
	if _, err := Fig12d(scale); err != nil {
		t.Errorf("Fig12d: %v", err)
	}
	if _, err := Fig13(scale, []int{1, 2}); err != nil {
		t.Errorf("Fig13: %v", err)
	}
	if _, err := Fig14a(scale, []float64{0, 1}); err != nil {
		t.Errorf("Fig14a: %v", err)
	}
	if _, err := Fig14b(scale, []float64{0, 1.2}); err != nil {
		t.Errorf("Fig14b: %v", err)
	}
	if _, err := Fig14c(scale, []float64{0, 0.8}); err != nil {
		t.Errorf("Fig14c: %v", err)
	}
}
