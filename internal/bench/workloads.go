package bench

import (
	"morphstreamr/internal/workload"
)

// Workload factories used by the figures. Data partitions always equal the
// worker count, matching how TSPEs shard executors.

// SLFor returns the default Streaming Ledger workload (PD-heavy).
func SLFor(scale Scale, seed int64) workload.Generator {
	p := workload.DefaultSLParams()
	p.Seed = seed
	p.Partitions = scale.Workers
	return workload.NewSL(p)
}

// GSFor returns the default Grep&Sum workload (skew-heavy).
func GSFor(scale Scale, seed int64) workload.Generator {
	p := workload.DefaultGSParams()
	p.Seed = seed
	p.Partitions = scale.Workers
	return workload.NewGS(p)
}

// TPFor returns the default Toll Processing workload (abort-heavy).
func TPFor(scale Scale, seed int64) workload.Generator {
	p := workload.DefaultTPParams()
	p.Seed = seed
	p.Partitions = scale.Workers
	return workload.NewTP(p)
}

// AppFactory names a workload constructor for table-driven figures.
type AppFactory struct {
	Name string
	Make func(Scale, int64) workload.Generator
}

// Apps lists the three benchmark applications in paper order.
func Apps() []AppFactory {
	return []AppFactory{
		{"SL", SLFor},
		{"GS", GSFor},
		{"TP", TPFor},
	}
}
