package bench

import (
	"fmt"

	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/ft/msr"
	"morphstreamr/internal/metrics"
	"morphstreamr/internal/workload"
)

// Fig9 reproduces the workload-aware log commitment study (Figure 9):
// runtime and recovery throughput of MorphStreamR under different log
// commitment epochs, across the four contention classes.
type Fig9Result struct {
	Epochs  []int
	Classes []string
	// Runtime[class][i] and Recovery[class][i] align with Epochs.
	Runtime  map[string][]float64
	Recovery map[string][]float64
	// Advised[class] is the workload-aware advisor's pick.
	Advised map[string]int
}

// fig9Class builds the GS configuration of one contention quadrant.
func fig9Class(name string) workload.GSParams {
	p := workload.DefaultGSParams()
	p.AbortRatio = 0
	switch name {
	case "LSFD":
		p.Theta, p.Reads = 0, 0
	case "LSMD":
		p.Theta, p.Reads, p.MultiPartitionRatio = 0, 3, 0.8
	case "HSFD":
		p.Theta, p.Reads = 1.0, 0
	case "HSMD":
		p.Theta, p.Reads, p.MultiPartitionRatio = 1.0, 3, 0.8
	}
	return p
}

// Fig9 runs the experiment. Commit epochs must divide the scale's
// snapshot interval.
func Fig9(scale Scale, epochs []int) (*Fig9Result, error) {
	if len(epochs) == 0 {
		epochs = []int{1, 2, 4, 8}
	}
	// Crash on a boundary every commit-epoch setting shares — but not on
	// a snapshot boundary — so no configuration is punished with a longer
	// uncommitted tail and every run actually recovers something.
	maxCE := epochs[len(epochs)-1]
	if scale.PostEpochs%maxCE != 0 {
		scale.PostEpochs = maxCE
	}
	if (scale.SnapshotEvery+scale.PostEpochs)%scale.SnapshotEvery == 0 {
		scale.SnapshotEvery *= 2
	}
	if scale.SnapshotEvery%maxCE != 0 {
		return nil, fmt.Errorf("fig9: snapshot interval %d incompatible with commit epochs %v",
			scale.SnapshotEvery, epochs)
	}
	res := &Fig9Result{
		Epochs:   epochs,
		Classes:  []string{"LSFD", "LSMD", "HSFD", "HSMD"},
		Runtime:  make(map[string][]float64),
		Recovery: make(map[string][]float64),
		Advised:  make(map[string]int),
	}
	for _, class := range res.Classes {
		for _, ce := range epochs {
			if scale.SnapshotEvery%ce != 0 {
				return nil, fmt.Errorf("fig9: commit epoch %d does not divide snapshot interval %d",
					ce, scale.SnapshotEvery)
			}
			p := fig9Class(class)
			p.Partitions = scale.Workers
			sc := scale
			sc.CommitEvery = ce
			run, err := Execute(Scenario{
				Gen:  func() workload.Generator { return workload.NewGS(p) },
				Kind: ftapi.MSR, Scale: sc, Repeat: 3,
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/ce%d: %w", class, ce, err)
			}
			res.Runtime[class] = append(res.Runtime[class], run.RuntimeThroughput)
			res.Recovery[class] = append(res.Recovery[class], run.RecoveryThroughput())
		}
		// What would workload-aware commitment have chosen?
		p := fig9Class(class)
		p.Partitions = scale.Workers
		auto := scale
		auto.AutoCommit = true
		run, err := Execute(Scenario{
			Gen:  func() workload.Generator { return workload.NewGS(p) },
			Kind: ftapi.MSR, Scale: auto,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s/auto: %w", class, err)
		}
		res.Advised[class] = run.CommitEvery
	}
	return res, nil
}

// Tables renders runtime and recovery views.
func (r *Fig9Result) Tables() []Table {
	mk := func(title string, data map[string][]float64) Table {
		t := Table{
			Title:  title,
			Note:   "Grep&Sum contention classes vs log commitment epoch (MSR)",
			Header: []string{"class"},
		}
		for _, ce := range r.Epochs {
			t.Header = append(t.Header, fmt.Sprintf("ce=%d", ce))
		}
		t.Header = append(t.Header, "advised")
		for _, class := range r.Classes {
			row := []string{class}
			for _, v := range data[class] {
				row = append(row, fnum(v))
			}
			row = append(row, fmt.Sprintf("%d", r.Advised[class]))
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	return []Table{
		mk("Figure 9 (runtime): throughput (events/s)", r.Runtime),
		mk("Figure 9 (recovery): throughput (events/s)", r.Recovery),
	}
}

// Fig12a reproduces the runtime throughput comparison (Figure 12a).
type Fig12aResult struct {
	// Tput[app][kind] in events/s.
	Tput map[string]map[ftapi.Kind]float64
}

// Fig12a runs the experiment.
func Fig12a(scale Scale) (*Fig12aResult, error) {
	res := &Fig12aResult{Tput: make(map[string]map[ftapi.Kind]float64)}
	for _, app := range Apps() {
		res.Tput[app.Name] = make(map[ftapi.Kind]float64)
		for _, kind := range ftapi.Kinds() {
			run, err := Execute(Scenario{Gen: func() workload.Generator { return app.Make(scale, 1) }, Kind: kind, Scale: scale, Repeat: 3})
			if err != nil {
				return nil, fmt.Errorf("fig12a %s/%v: %w", app.Name, kind, err)
			}
			res.Tput[app.Name][kind] = run.RuntimeThroughput
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig12aResult) Table() Table {
	t := Table{
		Title:  "Figure 12a: runtime throughput (events/s, % of native in parentheses)",
		Header: []string{"app"},
	}
	for _, kind := range ftapi.Kinds() {
		t.Header = append(t.Header, kind.String())
	}
	for _, app := range Apps() {
		nat := r.Tput[app.Name][ftapi.NAT]
		row := []string{app.Name}
		for _, kind := range ftapi.Kinds() {
			v := r.Tput[app.Name][kind]
			row = append(row, fmt.Sprintf("%s (%.0f%%)", fnum(v), 100*v/nat))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12b reproduces the selective-logging effectiveness study
// (Figure 12b): logging efficiency — recovery improvement over CKPT
// divided by runtime degradation versus native — with and without
// selective logging, as the multi-partition ratio grows.
type Fig12bResult struct {
	Ratios []float64
	// Efficiency[variant][i]: variant is "selective" or "full".
	Efficiency map[string][]float64
	// LogBytes[variant][i]: durable view log volume.
	LogBytes map[string][]int64
}

// Fig12b runs the experiment.
func Fig12b(scale Scale, ratios []float64) (*Fig12bResult, error) {
	if len(ratios) == 0 {
		ratios = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	res := &Fig12bResult{
		Ratios:     ratios,
		Efficiency: make(map[string][]float64),
		LogBytes:   make(map[string][]int64),
	}
	for _, ratio := range ratios {
		mkGen := func() workload.Generator {
			p := workload.DefaultSLParams()
			p.Partitions = scale.Workers
			p.MultiPartitionRatio = ratio
			return workload.NewSL(p)
		}
		nat, err := Execute(Scenario{Gen: mkGen, Kind: ftapi.NAT, Scale: scale, Repeat: 3})
		if err != nil {
			return nil, err
		}
		ckpt, err := Execute(Scenario{Gen: mkGen, Kind: ftapi.CKPT, Scale: scale, Repeat: 3})
		if err != nil {
			return nil, err
		}
		for _, variant := range []string{"selective", "full"} {
			opts := msr.Default()
			opts.SelectiveLogging = variant == "selective"
			run, err := Execute(Scenario{Gen: mkGen, Kind: ftapi.MSR, Scale: scale, MSR: &opts, Repeat: 3})
			if err != nil {
				return nil, fmt.Errorf("fig12b %s/%.1f: %w", variant, ratio, err)
			}
			improvement := run.RecoveryThroughput() / ckpt.RecoveryThroughput()
			degradation := nat.RuntimeThroughput / run.RuntimeThroughput
			res.Efficiency[variant] = append(res.Efficiency[variant], improvement/degradation)
			res.LogBytes[variant] = append(res.LogBytes[variant], run.LogBytes)
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig12bResult) Table() Table {
	t := Table{
		Title:  "Figure 12b: logging efficiency of selective logging (SL)",
		Note:   "efficiency = (recovery tput / CKPT recovery tput) / (NAT tput / runtime tput); higher is better",
		Header: []string{"multi-partition"},
	}
	for _, v := range []string{"selective", "full"} {
		t.Header = append(t.Header, v, v+"-logKB")
	}
	for i, ratio := range r.Ratios {
		row := []string{fmt.Sprintf("%.0f%%", 100*ratio)}
		for _, v := range []string{"selective", "full"} {
			row = append(row, fnum(r.Efficiency[v][i]), fmt.Sprintf("%d", r.LogBytes[v][i]/1024))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12c reproduces the memory footprint study (Figure 12c): peak live
// fault-tolerance artifact bytes per scheme on SL.
type Fig12cResult struct {
	Peak map[ftapi.Kind]int64
	Log  map[ftapi.Kind]int64
}

// Fig12c runs the experiment.
func Fig12c(scale Scale) (*Fig12cResult, error) {
	res := &Fig12cResult{Peak: make(map[ftapi.Kind]int64), Log: make(map[ftapi.Kind]int64)}
	// Longer commit groups expose buffering; keep the default grouping but
	// skip recovery cost by measuring the runtime phase only.
	sc := scale
	sc.CommitEvery = 2
	for _, kind := range recoveryKinds() {
		run, err := Execute(Scenario{Gen: func() workload.Generator { return SLFor(sc, 1) }, Kind: kind, Scale: sc})
		if err != nil {
			return nil, fmt.Errorf("fig12c %v: %w", kind, err)
		}
		res.Peak[kind] = run.PeakLiveBytes
		res.Log[kind] = run.LogBytes
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig12cResult) Table() Table {
	t := Table{
		Title:  "Figure 12c: fault-tolerance artifact footprint (SL)",
		Note:   "peak live in-memory bytes and cumulative durable log bytes (KiB)",
		Header: []string{"scheme", "peak-live(KiB)", "log-written(KiB)"},
	}
	for _, kind := range recoveryKinds() {
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", r.Peak[kind]/1024),
			fmt.Sprintf("%d", r.Log[kind]/1024),
		})
	}
	return t
}

// Fig12d reproduces the runtime overhead breakdown (Figure 12d): I/O,
// tracking, and sync time per scheme on SL, relative to native execution.
type Fig12dResult struct {
	Overhead map[ftapi.Kind]metrics.RuntimeBreakdown
	Events   int
}

// Fig12d runs the experiment.
func Fig12d(scale Scale) (*Fig12dResult, error) {
	res := &Fig12dResult{Overhead: make(map[ftapi.Kind]metrics.RuntimeBreakdown)}
	for _, kind := range recoveryKinds() {
		run, err := Execute(Scenario{Gen: func() workload.Generator { return SLFor(scale, 1) }, Kind: kind, Scale: scale, Repeat: 3})
		if err != nil {
			return nil, fmt.Errorf("fig12d %v: %w", kind, err)
		}
		res.Overhead[kind] = run.Runtime
		res.Events = run.Events
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig12dResult) Table() Table {
	t := Table{
		Title:  "Figure 12d: runtime overhead breakdown (SL)",
		Note:   "milliseconds of fault-tolerance work added over native execution",
		Header: []string{"scheme", "io(ms)", "tracking(ms)", "sync(ms)", "total(ms)"},
	}
	for _, kind := range recoveryKinds() {
		o := r.Overhead[kind]
		t.Rows = append(t.Rows, []string{
			kind.String(), ms(o.IO), ms(o.Tracking), ms(o.Sync), ms(o.Total()),
		})
	}
	return t
}
