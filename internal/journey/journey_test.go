package journey

import (
	"testing"
	"time"
)

// drainOne finalizes nothing itself — helper to pull the single completed
// record out of a recorder.
func drainOne(t *testing.T, r *Recorder) Record {
	t.Helper()
	recs, _ := r.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d records, want 1", len(recs))
	}
	return recs[0]
}

func TestDecompositionSumsToTotal(t *testing.T) {
	r := NewRecorder(Config{})
	j := r.Start("t0", 1)
	j.Stamp(StageQueue)
	j.Stamp(StageRoute)
	j.SetRoute(3, []int{0, 1})
	j.Stamp(StageExecute)
	j.Stamp(StageCommit)
	j.Complete()

	rec := drainOne(t, r)
	var sum time.Duration
	for _, d := range rec.StageDurs {
		sum += d
	}
	if sum != rec.Total {
		t.Fatalf("stage sum %v != total %v", sum, rec.Total)
	}
	if rec.Total != rec.End.Sub(rec.Start) {
		t.Fatalf("total %v != end-start %v", rec.Total, rec.End.Sub(rec.Start))
	}
	if rec.Epoch != 3 || len(rec.Shards) != 2 {
		t.Fatalf("route not recorded: epoch=%d shards=%v", rec.Epoch, rec.Shards)
	}
	if rec.Shed || rec.Recovered {
		t.Fatalf("clean journey flagged shed=%v recovered=%v", rec.Shed, rec.Recovered)
	}
}

func TestRejectedFirstAttemptExtendsAdmission(t *testing.T) {
	r := NewRecorder(Config{})
	r.NoteRejected("t0", 1)
	time.Sleep(2 * time.Millisecond)
	j := r.Start("t0", 1)
	j.Complete()

	rec := drainOne(t, r)
	if rec.StageDurs[StageAdmission] < 2*time.Millisecond {
		t.Fatalf("admission stage %v does not cover the rejected wait", rec.StageDurs[StageAdmission])
	}
}

func TestRecoveryWindowAttribution(t *testing.T) {
	r := NewRecorder(Config{})
	j := r.Start("t0", 1)
	j.Stamp(StageQueue)
	r.RecoveryBegin()
	time.Sleep(2 * time.Millisecond)
	r.RecoveryEnd()
	j.Stamp(StageExecute)
	j.Complete()

	rec := drainOne(t, r)
	if !rec.Recovered || rec.Heals != 1 {
		t.Fatalf("recovered=%v heals=%d, want true/1", rec.Recovered, rec.Heals)
	}
	if rec.StageDurs[StageRecovery] < 2*time.Millisecond {
		t.Fatalf("RECOVERY stage %v does not cover the heal window", rec.StageDurs[StageRecovery])
	}
	var sum time.Duration
	for _, d := range rec.StageDurs {
		sum += d
	}
	if sum != rec.Total {
		t.Fatalf("stage sum %v != total %v with recovery window", sum, rec.Total)
	}
	if r.Incarnation() != 1 {
		t.Fatalf("incarnation %d, want 1", r.Incarnation())
	}
}

func TestStartedMidRecovery(t *testing.T) {
	r := NewRecorder(Config{})
	r.RecoveryBegin()
	j := r.Start("t0", 1)
	time.Sleep(time.Millisecond)
	r.RecoveryEnd()
	j.Complete()

	rec := drainOne(t, r)
	if !rec.Recovered {
		t.Fatal("journey started mid-recovery not flagged recovered")
	}
	if rec.StageDurs[StageRecovery] <= 0 {
		t.Fatalf("RECOVERY stage %v, want > 0", rec.StageDurs[StageRecovery])
	}
}

func TestDoubleCompleteCountedOnce(t *testing.T) {
	r := NewRecorder(Config{})
	j := r.Start("t0", 1)
	j.Complete()
	j.Complete()
	j.Shed()
	if got := r.DoubleCompletes(); got != 2 {
		t.Fatalf("double completes %d, want 2", got)
	}
	recs, _ := r.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d records, want 1", len(recs))
	}
}

func TestStampClampsBackwardsTime(t *testing.T) {
	r := NewRecorder(Config{})
	j := r.Start("t0", 1)
	j.Stamp(StageQueue)
	// A commit time recorded before the previous stamp (possible when the
	// frontier-advance wall time predates the execute stamp) must clamp, not
	// produce a negative segment.
	j.StampAt(StageCommit, time.Now().Add(-time.Hour))
	j.Complete()

	rec := drainOne(t, r)
	for st, d := range rec.StageDurs {
		if d < 0 {
			t.Fatalf("stage %q negative: %v", st, d)
		}
	}
	if d, ok := rec.StageDurs[StageCommit]; !ok || d != 0 {
		t.Fatalf("clamped commit stage = %v (present=%v), want 0", d, ok)
	}
}

func TestShedActiveAndReplayReuse(t *testing.T) {
	r := NewRecorder(Config{})
	j1 := r.Start("t0", 1)
	if j2 := r.Start("t0", 1); j2 != j1 {
		t.Fatal("replayed Start did not reuse the active journey")
	}
	r.Start("t1", 1)
	r.ShedActive()
	if n := r.ActiveCount(); n != 0 {
		t.Fatalf("active after ShedActive: %d", n)
	}
	recs, _ := r.Drain()
	if len(recs) != 2 {
		t.Fatalf("drained %d, want 2", len(recs))
	}
	for _, rec := range recs {
		if !rec.Shed {
			t.Fatalf("journey %s/%d not marked shed", rec.Tenant, rec.Seq)
		}
	}
}

func TestDoneBufferBounded(t *testing.T) {
	r := NewRecorder(Config{MaxDone: 4})
	for i := uint64(1); i <= 10; i++ {
		r.Start("t0", i).Complete()
	}
	recs, dropped := r.Drain()
	if len(recs) != 4 {
		t.Fatalf("kept %d records, want 4", len(recs))
	}
	if dropped != 6 {
		t.Fatalf("dropped %d, want 6", dropped)
	}
	if recs[len(recs)-1].Seq != 10 {
		t.Fatalf("newest record seq %d, want 10 (oldest dropped first)", recs[len(recs)-1].Seq)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.ShouldSample(4, false) || r.ShouldSample(4, true) {
		// Even a client-flagged batch: there is nowhere to record it.
		t.Fatal("nil recorder sampled")
	}
	r.NoteRejected("t", 1)
	j := r.Start("t", 1)
	if j != nil {
		t.Fatal("nil recorder returned a journey")
	}
	j.Stamp(StageQueue)
	j.StampAt(StageCommit, time.Now())
	j.SetRoute(1, nil)
	j.Complete()
	j.Shed()
	r.RecoveryBegin()
	r.RecoveryEnd()
	r.ShedActive()
	if recs, d := r.Drain(); recs != nil || d != 0 {
		t.Fatal("nil recorder drained records")
	}
	if r.ActiveCount() != 0 || r.Incarnation() != 0 || r.DoubleCompletes() != 0 {
		t.Fatal("nil recorder counters non-zero")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(Config{})
	for i := uint64(1); i <= 5; i++ {
		j := r.Start("t0", i)
		j.Stamp(StageQueue)
		j.Complete()
	}
	recs, _ := r.Drain()
	s := Summarize(recs)
	if s.Journeys != 5 {
		t.Fatalf("journeys %d, want 5", s.Journeys)
	}
	if s.Total.Count != 5 {
		t.Fatalf("total count %d, want 5", s.Total.Count)
	}
	if s.MaxDecompErrMs != 0 {
		t.Fatalf("decomposition error %vms, want 0", s.MaxDecompErrMs)
	}
	if _, ok := s.Stages[StageQueue]; !ok {
		t.Fatal("queue stage missing from summary")
	}
}
