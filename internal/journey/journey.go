// Package journey is the end-to-end event tracing layer: a lightweight
// per-batch trace context attached to a sampled fraction of Submit frames
// and propagated through every serving stage — admission (including
// token-bucket waits across retries), tenant queue residency, routing and
// sequence assignment, epoch execution, commit punctuation, ack flush —
// each stage stamping a monotonic timestamp into a per-event journey
// record.
//
// Journeys of in-flight batches are stitched across engine incarnations:
// the pump brackets a heal with RecoveryBegin/RecoveryEnd, and any part of
// a journey spent inside such a window is attributed to the explicit
// RECOVERY stage instead of the stage it would otherwise fall into, so a
// batch that lived through a kill-and-heal shows the outage as a stage in
// its own timeline rather than as unexplained queue or commit time.
//
// The decomposition invariant: for every completed journey, the per-stage
// durations sum exactly to End−Start (the client-observed ack lag as seen
// from the server side). The package follows the repo's nil-object
// pattern — a nil *Recorder samples nothing and a nil *J is inert, so the
// serving hot path pays one nil check with tracing off.
package journey

import (
	"sync"
	"time"
)

// Stage labels one segment of a journey. The value of a stamp's stage is
// "the segment ending at this stamp belongs to this stage".
type Stage string

const (
	// StageAdmission: first Submit arrival (including rejected attempts
	// that were throttled or shed) to admission into the tenant queue.
	StageAdmission Stage = "admission"
	// StageQueue: admitted to gathered by the pump.
	StageQueue Stage = "queue"
	// StageRoute: gathered to sequenced + manifest-recorded + routed.
	StageRoute Stage = "route"
	// StageExecute: fed to the epoch's TPG execution completing.
	StageExecute Stage = "execute"
	// StageCommit: executed to the commit punctuation frontier covering
	// the batch's epoch.
	StageCommit Stage = "commit"
	// StageAck: commit to the ack frame leaving the server.
	StageAck Stage = "ack"
	// StageRecovery: time spent inside a heal window, attributed
	// explicitly regardless of which stage the batch was in.
	StageRecovery Stage = "RECOVERY"
)

// Stages returns the canonical stage order (RECOVERY last).
func Stages() []Stage {
	return []Stage{StageAdmission, StageQueue, StageRoute, StageExecute, StageCommit, StageAck, StageRecovery}
}

// Record is one completed journey.
type Record struct {
	Tenant string `json:"tenant"`
	Seq    uint64 `json:"seq"`
	// Epoch is the backend epoch the batch was fed into (the last one, if
	// a heal re-fed it); Shards the distinct shards it routed to.
	Epoch  uint64 `json:"epoch"`
	Shards []int  `json:"shards,omitempty"`
	// Shed marks a journey terminated without an ack (server shutdown or
	// terminal failure); its decomposition still sums to Total.
	Shed bool `json:"shed"`
	// Heals is how many recovery windows the journey lived through;
	// Recovered is Heals > 0.
	Heals     int  `json:"heals"`
	Recovered bool `json:"recovered"`

	Start time.Time     `json:"start"`
	End   time.Time     `json:"end"`
	Total time.Duration `json:"total"`
	// StageDurs maps each stage to the time attributed to it. The sum of
	// all values equals Total exactly.
	StageDurs map[Stage]time.Duration `json:"stages"`
}

// stamp is one stage boundary inside an active journey.
type stamp struct {
	at    time.Time
	stage Stage
}

// window is one recovery interval a journey overlapped.
type window struct{ begin, end time.Time }

// J is one active journey. All mutation goes through the owning
// Recorder's mutex; a nil *J (unsampled batch) is inert.
type J struct {
	rec    *Recorder
	tenant string
	seq    uint64

	first   time.Time
	stamps  []stamp
	epoch   uint64
	shards  []int
	heals   int
	recOpen time.Time // open recovery window begin (zero when none)
	windows []window
	done    bool
}

// Config shapes a Recorder.
type Config struct {
	// SampleEvery samples every Nth batch sequence per tenant (seq %
	// SampleEvery == 0); 0 disables server-side sampling (client-flagged
	// batches are still traced).
	SampleEvery uint64
	// MaxDone bounds the completed-journey buffer (default 8192; oldest
	// dropped first, counted).
	MaxDone int
	// MaxFirsts bounds the rejected-first-attempt map (default 4096).
	MaxFirsts int
}

// Recorder owns every active and completed journey. A nil *Recorder is
// the disabled recorder: ShouldSample is false, Start returns nil, and
// every other method is a no-op.
type Recorder struct {
	cfg Config

	mu          sync.Mutex
	active      map[journeyKey]*J
	firsts      map[journeyKey]time.Time // earliest rejected attempt per key
	done        []Record
	droppedDone uint64
	recovering  bool
	recBegan    time.Time
	incarnation int
	doubleDone  uint64
}

type journeyKey struct {
	tenant string
	seq    uint64
}

// NewRecorder creates a recorder.
func NewRecorder(cfg Config) *Recorder {
	if cfg.MaxDone <= 0 {
		cfg.MaxDone = 8192
	}
	if cfg.MaxFirsts <= 0 {
		cfg.MaxFirsts = 4096
	}
	return &Recorder{
		cfg:    cfg,
		active: map[journeyKey]*J{},
		firsts: map[journeyKey]time.Time{},
	}
}

// ShouldSample decides whether the batch with this sequence is traced:
// the client asked (flag bit on the Submit frame) or the server-side
// modulus selects it. Nil-safe (false).
func (r *Recorder) ShouldSample(seq uint64, clientFlag bool) bool {
	if r == nil {
		return false
	}
	if clientFlag {
		return true
	}
	return r.cfg.SampleEvery > 0 && seq%r.cfg.SampleEvery == 0
}

// NoteRejected records the arrival time of a sampled Submit that admission
// rejected (throttle, shed, queue-full): when a later retry is admitted,
// the journey's clock starts at the first attempt, so token-bucket wait
// shows up as admission time. Nil-safe.
func (r *Recorder) NoteRejected(tenant string, seq uint64) {
	if r == nil {
		return
	}
	now := time.Now()
	k := journeyKey{tenant, seq}
	r.mu.Lock()
	if _, seen := r.firsts[k]; !seen && len(r.firsts) < r.cfg.MaxFirsts {
		r.firsts[k] = now
	}
	r.mu.Unlock()
}

// Start opens a journey for an admitted batch, stamping the admission
// boundary now. If a rejected first attempt was noted for the same key,
// the journey's clock starts there. Starting a key that is already active
// returns the existing journey (reconnect replays). Nil-safe (nil).
func (r *Recorder) Start(tenant string, seq uint64) *J {
	if r == nil {
		return nil
	}
	now := time.Now()
	k := journeyKey{tenant, seq}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.active[k]; ok {
		return j
	}
	first := now
	if t, ok := r.firsts[k]; ok {
		first = t
		delete(r.firsts, k)
	}
	j := &J{rec: r, tenant: tenant, seq: seq, first: first}
	if r.recovering {
		j.recOpen = now
	}
	j.stamps = append(j.stamps, stamp{at: now, stage: StageAdmission})
	r.active[k] = j
	return j
}

// Stamp marks a stage boundary now. Nil-safe.
func (j *J) Stamp(stage Stage) {
	if j == nil {
		return
	}
	j.rec.mu.Lock()
	j.stampLocked(time.Now(), stage)
	j.rec.mu.Unlock()
}

// StampAt marks a stage boundary at a given time (the commit boundary
// uses the frontier-advance time recorded by the shard group). Times
// before the previous stamp are clamped — stamps stay monotonic so the
// decomposition stays exact. Nil-safe.
func (j *J) StampAt(stage Stage, at time.Time) {
	if j == nil {
		return
	}
	j.rec.mu.Lock()
	j.stampLocked(at, stage)
	j.rec.mu.Unlock()
}

func (j *J) stampLocked(at time.Time, stage Stage) {
	if j.done {
		return
	}
	if n := len(j.stamps); n > 0 && at.Before(j.stamps[n-1].at) {
		at = j.stamps[n-1].at
	}
	if at.Before(j.first) {
		at = j.first
	}
	j.stamps = append(j.stamps, stamp{at: at, stage: stage})
}

// SetRoute records which epoch the batch was fed into and the distinct
// shards it routed to. Nil-safe.
func (j *J) SetRoute(epoch uint64, shards []int) {
	if j == nil {
		return
	}
	j.rec.mu.Lock()
	j.epoch = epoch
	j.shards = shards
	j.rec.mu.Unlock()
}

// Complete stamps the ack boundary and finalizes the journey. Nil-safe;
// completing twice is counted (DoubleCompletes) and otherwise ignored.
func (j *J) Complete() {
	j.finish(false)
}

// Shed finalizes the journey without an ack (terminal server failure or
// shutdown with the batch still in flight). Nil-safe.
func (j *J) Shed() {
	j.finish(true)
}

func (j *J) finish(shed bool) {
	if j == nil {
		return
	}
	now := time.Now()
	r := j.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	if j.done {
		r.doubleDone++
		return
	}
	delete(r.active, journeyKey{j.tenant, j.seq})
	j.stampLocked(now, StageAck)
	j.done = true
	if !j.recOpen.IsZero() {
		j.windows = append(j.windows, window{begin: j.recOpen, end: now})
		j.recOpen = time.Time{}
	}
	rec := j.finalizeLocked(shed)
	if len(r.done) >= r.cfg.MaxDone {
		copy(r.done, r.done[1:])
		r.done = r.done[:len(r.done)-1]
		r.droppedDone++
	}
	r.done = append(r.done, rec)
}

// finalizeLocked walks the stamps and attributes each inter-stamp segment
// to the stage of the segment's closing stamp — except the portion of the
// segment overlapping a recovery window, which goes to RECOVERY. The sum
// of all attributed durations equals End−Start exactly by construction.
func (j *J) finalizeLocked(shed bool) Record {
	stages := make(map[Stage]time.Duration, len(Stages()))
	cursor := j.first
	for _, st := range j.stamps {
		seg := st.at.Sub(cursor)
		if seg < 0 {
			seg = 0
		}
		recPart := overlap(cursor, st.at, j.windows)
		if recPart > seg {
			recPart = seg
		}
		if recPart > 0 {
			stages[StageRecovery] += recPart
		}
		stages[st.stage] += seg - recPart
		cursor = st.at
	}
	return Record{
		Tenant:    j.tenant,
		Seq:       j.seq,
		Epoch:     j.epoch,
		Shards:    j.shards,
		Shed:      shed,
		Heals:     j.heals,
		Recovered: j.heals > 0 || len(j.windows) > 0,
		Start:     j.first,
		End:       cursor,
		Total:     cursor.Sub(j.first),
		StageDurs: stages,
	}
}

// overlap sums the intersection of [a, b] with the windows.
func overlap(a, b time.Time, windows []window) time.Duration {
	var d time.Duration
	for _, w := range windows {
		lo, hi := w.begin, w.end
		if lo.Before(a) {
			lo = a
		}
		if hi.After(b) {
			hi = b
		}
		if hi.After(lo) {
			d += hi.Sub(lo)
		}
	}
	return d
}

// RecoveryBegin opens a recovery window: every active journey — and any
// journey started before the matching RecoveryEnd — has the window's span
// attributed to the RECOVERY stage. Nested begins are flattened. Nil-safe.
func (r *Recorder) RecoveryBegin() {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recovering {
		return
	}
	r.recovering = true
	r.recBegan = now
	for _, j := range r.active {
		if j.recOpen.IsZero() {
			j.recOpen = now
		}
	}
}

// RecoveryEnd closes the open recovery window and advances the recorder's
// incarnation — journeys alive across the edge are the stitched ones.
// Nil-safe.
func (r *Recorder) RecoveryEnd() {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.recovering {
		return
	}
	r.recovering = false
	r.incarnation++
	for _, j := range r.active {
		if !j.recOpen.IsZero() {
			j.windows = append(j.windows, window{begin: j.recOpen, end: now})
			j.recOpen = time.Time{}
			j.heals++
		}
	}
}

// ShedActive finalizes every active journey as shed — the server is
// closing or terminal and no ack will ever come. Nil-safe.
func (r *Recorder) ShedActive() {
	if r == nil {
		return
	}
	r.mu.Lock()
	js := make([]*J, 0, len(r.active))
	for _, j := range r.active {
		js = append(js, j)
	}
	r.mu.Unlock()
	for _, j := range js {
		j.Shed()
	}
}

// Drain removes and returns every completed journey plus the count of
// records dropped to the buffer bound since the previous drain. Nil-safe.
func (r *Recorder) Drain() ([]Record, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.done
	dropped := r.droppedDone
	r.done = nil
	r.droppedDone = 0
	return out, dropped
}

// ActiveCount returns how many journeys are in flight. Nil-safe.
func (r *Recorder) ActiveCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Incarnation returns how many recovery windows the recorder has closed.
// Nil-safe.
func (r *Recorder) Incarnation() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.incarnation
}

// DoubleCompletes returns how many times a journey was finalized more
// than once — the stitching invariant's violation counter; it must stay 0.
// Nil-safe.
func (r *Recorder) DoubleCompletes() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doubleDone
}
