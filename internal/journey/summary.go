package journey

import (
	"sort"
	"time"

	"morphstreamr/internal/obs"
)

// StageStats are the latency percentiles for one stage across a set of
// completed journeys, in milliseconds (the shared obs.Percentile
// estimator, interpolated).
type StageStats struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// MeanMs is the arithmetic mean; SumMs the grand total across
	// journeys (for share-of-total views).
	MeanMs float64 `json:"mean_ms"`
	SumMs  float64 `json:"sum_ms"`
}

// Summary aggregates a drained record set for reports and /journeys-style
// views.
type Summary struct {
	Journeys  int                   `json:"journeys"`
	Shed      int                   `json:"shed"`
	Recovered int                   `json:"recovered"`
	Stages    map[Stage]StageStats  `json:"stages"`
	Total     StageStats            `json:"total"`
	// MaxDecompErrMs is the largest |sum(stages) − total| across the set:
	// the decomposition-consistency invariant says it is 0 up to float
	// rounding.
	MaxDecompErrMs float64 `json:"max_decomp_err_ms"`
}

// Summarize reduces completed journeys to per-stage percentile stats.
// Every stage that appears in any record appears in the output; shed
// journeys are included (their partial decompositions are real time the
// client waited).
func Summarize(recs []Record) Summary {
	sum := Summary{Stages: map[Stage]StageStats{}}
	if len(recs) == 0 {
		return sum
	}
	samples := map[Stage][]float64{}
	var totals []float64
	for _, rec := range recs {
		sum.Journeys++
		if rec.Shed {
			sum.Shed++
		}
		if rec.Recovered {
			sum.Recovered++
		}
		var stageSum time.Duration
		for st, d := range rec.StageDurs {
			samples[st] = append(samples[st], float64(d)/float64(time.Millisecond))
			stageSum += d
		}
		totalMs := float64(rec.Total) / float64(time.Millisecond)
		totals = append(totals, totalMs)
		if err := absMs(stageSum - rec.Total); err > sum.MaxDecompErrMs {
			sum.MaxDecompErrMs = err
		}
	}
	for st, s := range samples {
		sum.Stages[st] = stageStats(s)
	}
	sum.Total = stageStats(totals)
	return sum
}

func absMs(d time.Duration) float64 {
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(time.Millisecond)
}

func stageStats(s []float64) StageStats {
	if len(s) == 0 {
		return StageStats{}
	}
	sort.Float64s(s)
	var total float64
	for _, v := range s {
		total += v
	}
	return StageStats{
		Count:  len(s),
		P50Ms:  obs.Percentile(s, 0.50),
		P90Ms:  obs.Percentile(s, 0.90),
		P99Ms:  obs.Percentile(s, 0.99),
		MaxMs:  s[len(s)-1],
		MeanMs: total / float64(len(s)),
		SumMs:  total,
	}
}
