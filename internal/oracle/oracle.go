// Package oracle is an independent, deliberately simple reference
// implementation of transactional stream semantics: it processes events one
// at a time, in timestamp order, against a plain map. Every correct
// schedule must be conflict-equivalent to this execution (Section II-A), so
// the engine's parallel results — and every recovery path — are tested for
// exact equality against the oracle's final state and outputs.
//
// The oracle shares only types.Apply with the engine; it has its own state
// representation and its own dependency handling (none needed: sequential
// execution makes every read trivially version-exact), which keeps it a
// genuine cross-check rather than a re-run of the same code.
package oracle

import (
	"morphstreamr/internal/types"
)

// Oracle executes events sequentially against map-backed state.
type Oracle struct {
	app   types.App
	state map[types.Key]types.Value
	specs []types.TableSpec
}

// New creates an oracle with the application's initial state.
func New(app types.App) *Oracle {
	o := &Oracle{app: app, state: make(map[types.Key]types.Value), specs: app.Tables()}
	return o
}

// get returns the current value of k, defaulting to the table's initial
// value for never-written records.
func (o *Oracle) get(k types.Key) types.Value {
	if v, ok := o.state[k]; ok {
		return v
	}
	for _, sp := range o.specs {
		if sp.ID == k.Table {
			return sp.Init
		}
	}
	return 0
}

// Apply processes one event to completion and returns its output.
func (o *Oracle) Apply(ev types.Event) types.Output {
	txn := o.app.Preprocess(ev)
	exec := o.ExecuteTxn(&txn)
	return o.app.Postprocess(exec)
}

// ExecuteTxn runs one transaction under the abort contract shared with the
// engine: dependency values are the current (pre-transaction) state; the
// condition operation decides abort; aborted transactions leave state
// untouched.
func (o *Oracle) ExecuteTxn(txn *types.Txn) *types.ExecutedTxn {
	// Capture dependency values before any write of this transaction:
	// deps are defined as of the transaction's start.
	depVals := make([][]types.Value, len(txn.Ops))
	for i := range txn.Ops {
		op := &txn.Ops[i]
		if len(op.Deps) == 0 {
			continue
		}
		dv := make([]types.Value, len(op.Deps))
		for j, dk := range op.Deps {
			dv[j] = o.get(dk)
		}
		depVals[i] = dv
	}
	results := make([]types.Value, len(txn.Ops))
	aborted := false
	for i := range txn.Ops {
		op := &txn.Ops[i]
		cur := o.get(op.Key)
		if aborted && !op.IsCondition() {
			results[i] = cur
			continue
		}
		v, ok := types.Apply(op.Fn, cur, depVals[i], op.Const)
		if !ok {
			results[i] = cur
			if op.IsCondition() {
				aborted = true
			}
			continue
		}
		results[i] = v
		o.state[op.Key] = v
	}
	return &types.ExecutedTxn{Txn: txn, Results: results, Aborted: aborted}
}

// Run processes a whole event stream and returns all outputs.
func (o *Oracle) Run(events []types.Event) []types.Output {
	out := make([]types.Output, 0, len(events))
	for _, ev := range events {
		out = append(out, o.Apply(ev))
	}
	return out
}

// Value exposes the oracle's view of one record for test assertions.
func (o *Oracle) Value(k types.Key) types.Value { return o.get(k) }

// State copies the oracle's materialised state (only keys ever written).
func (o *Oracle) State() map[types.Key]types.Value {
	cp := make(map[types.Key]types.Value, len(o.state))
	for k, v := range o.state {
		cp[k] = v
	}
	return cp
}
