package oracle

import (
	"testing"

	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

// TestFig3Scenario replays the paper's Figure 3 example end to end
// through a real SL application: deposit then two transfers.
func TestFig3Scenario(t *testing.T) {
	app := workload.NewSLApp(16, 0)
	o := New(app)
	accA := types.Key{Table: workload.SLAccounts, Row: 1}
	accB := types.Key{Table: workload.SLAccounts, Row: 2}

	// e1: Deposit(A, 100)
	out := o.Apply(types.Event{Seq: 0, Kind: workload.SLDeposit,
		Keys: []types.Key{accA, {Table: workload.SLAssets, Row: 1}}, Vals: []types.Value{100}})
	if out.Vals[0] != 100 {
		t.Fatalf("deposit output balance = %d, want 100", out.Vals[0])
	}

	// e2: Transfer(A, B, 30) — commits.
	out = o.Apply(types.Event{Seq: 1, Kind: workload.SLTransfer,
		Keys: []types.Key{accA, accB,
			{Table: workload.SLAssets, Row: 1}, {Table: workload.SLAssets, Row: 2}},
		Vals: []types.Value{30}})
	if out.Vals[0] != 0 {
		t.Fatal("transfer should commit")
	}
	if o.Value(accA) != 70 || o.Value(accB) != 30 {
		t.Fatalf("after transfer: A=%d B=%d, want 70/30", o.Value(accA), o.Value(accB))
	}

	// e3: Transfer(B, A, 50) — aborts: B holds only 30.
	out = o.Apply(types.Event{Seq: 2, Kind: workload.SLTransfer,
		Keys: []types.Key{accB, accA,
			{Table: workload.SLAssets, Row: 2}, {Table: workload.SLAssets, Row: 1}},
		Vals: []types.Value{50}})
	if out.Vals[0] != 1 {
		t.Fatal("transfer should abort: insufficient balance")
	}
	if o.Value(accA) != 70 || o.Value(accB) != 30 {
		t.Fatalf("aborted transfer mutated state: A=%d B=%d", o.Value(accA), o.Value(accB))
	}
}

// TestAbortAtomicity: an aborting condition op must void the whole
// transaction even when later ops would have succeeded on their own.
func TestAbortAtomicity(t *testing.T) {
	app := workload.NewTPApp(8)
	o := New(app)
	speedK := types.Key{Table: workload.TPSpeed, Row: 3}
	cntK := types.Key{Table: workload.TPCount, Row: 3}

	ex := o.ExecuteTxn(&types.Txn{ID: 0, TS: 0, Ops: []types.Operation{
		{TxnID: 0, TS: 0, Idx: 0, Key: speedK, Fn: types.FnEwmaGuard, Const: -5},
		{TxnID: 0, TS: 0, Idx: 1, Key: cntK, Fn: types.FnInc},
	}})
	if !ex.Aborted {
		t.Fatal("negative speed must abort")
	}
	if o.Value(cntK) != 0 {
		t.Error("counter incremented despite abort: atomicity broken")
	}
	if ex.Results[0] != 0 || ex.Results[1] != 0 {
		t.Errorf("aborted results = %v, want value-preserving zeros", ex.Results)
	}
}

// TestDepValuesCapturedAtTxnStart: a transaction reading a key it also
// writes must see the pre-transaction value in its dependencies.
func TestDepValuesCapturedAtTxnStart(t *testing.T) {
	app := workload.NewSLApp(8, 100)
	o := New(app)
	src := types.Key{Table: workload.SLAccounts, Row: 0}
	dst := types.Key{Table: workload.SLAccounts, Row: 1}
	// Transfer of exactly 100: the dst credit's guard reads src's
	// PRE-debit balance (100), not the post-debit 0.
	ex := o.ExecuteTxn(&types.Txn{ID: 0, TS: 0, Ops: []types.Operation{
		{TxnID: 0, TS: 0, Idx: 0, Key: src, Fn: types.FnGuardedSubSelf, Const: 100},
		{TxnID: 0, TS: 0, Idx: 1, Key: dst, Fn: types.FnGuardedAdd, Const: 100, Deps: []types.Key{src}},
	}})
	if ex.Aborted {
		t.Fatal("transfer of exact balance must commit")
	}
	if o.Value(src) != 0 || o.Value(dst) != 200 {
		t.Errorf("src=%d dst=%d, want 0/200", o.Value(src), o.Value(dst))
	}
}

func TestStateSnapshotting(t *testing.T) {
	app := workload.NewGSApp(8)
	o := New(app)
	o.Apply(types.Event{Seq: 0, Kind: workload.GSPut,
		Keys: []types.Key{{Table: workload.GSTable, Row: 2}}, Vals: []types.Value{9}})
	st := o.State()
	if len(st) != 1 || st[types.Key{Table: workload.GSTable, Row: 2}] != 9 {
		t.Errorf("State() = %v", st)
	}
	st[types.Key{Table: workload.GSTable, Row: 2}] = 0
	if o.Value(types.Key{Table: workload.GSTable, Row: 2}) != 9 {
		t.Error("State() must be a copy")
	}
	// Unwritten keys read as table Init (GS Init = 1).
	if o.Value(types.Key{Table: workload.GSTable, Row: 5}) != 1 {
		t.Error("unwritten key must read table Init")
	}
}

func TestRunCollectsAllOutputs(t *testing.T) {
	p := workload.DefaultTPParams()
	p.Segments = 64
	gen := workload.NewTP(p)
	o := New(gen.App())
	events := workload.Batch(gen, 100)
	outs := o.Run(events)
	if len(outs) != 100 {
		t.Fatalf("outputs = %d, want 100", len(outs))
	}
	for i, out := range outs {
		if out.EventSeq != uint64(i) {
			t.Fatalf("output %d for event %d", i, out.EventSeq)
		}
	}
}
