// Quickstart: run a Streaming Ledger application under MorphStreamR fault
// tolerance, crash it mid-stream, and recover — the 60-second tour of the
// library's public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"morphstreamr/internal/core"
	"morphstreamr/internal/workload"
)

func main() {
	// 1. An application: Streaming Ledger, the paper's running example.
	//    Generators are deterministic; the same seed replays the same
	//    stream.
	gen := workload.NewSL(workload.DefaultSLParams())

	// 2. A system: the engine wired to MorphStreamR (MSR) fault tolerance.
	//    Epochs snapshot every 8 batches; logs group-commit every batch.
	sys, err := core.New(gen.App(), core.Config{
		RunShape:  core.RunShape{Workers: 4, SnapshotEvery: 8},
		FT:        core.MSR,
		BatchSize: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Process twelve epochs: a checkpoint lands at epoch 8, so the
	//    crash below loses epochs 9-12 from memory — but not from the
	//    durable device.
	for epoch := 1; epoch <= 12; epoch++ {
		if err := sys.ProcessBatch(workload.Batch(gen, 2048)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("processed %d events at %.0f events/s; delivered %d outputs\n",
		sys.Engine.Events(), sys.Engine.Throughput(), len(sys.Engine.Delivered()))

	// 4. Power failure. Everything volatile is gone.
	sys.Crash()

	// 5. Recovery: restore the checkpoint, replay the committed epochs
	//    with MorphStreamR's dependency-aware optimizations, and keep
	//    going exactly where the stream left off.
	recovered, report, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d events in %v (simulated %d-worker wall: %v)\n",
		report.EventsReplayed, report.Wall.Round(0), report.Workers, report.SimWall().Round(0))
	fmt.Printf("  breakdown: %v\n", report.Breakdown.PerWorker(report.Workers))

	// 6. The recovered system continues as if nothing happened.
	if err := recovered.ProcessBatch(workload.Batch(gen, 2048)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at epoch %d; %d new outputs delivered after recovery\n",
		recovered.Engine.Epoch(), len(recovered.Engine.Delivered()))
}
