// Streaming Ledger: the paper's motivating application (Figure 1) in
// full — money and assets moving between accounts under exactly-once,
// transactionally consistent processing, with an audit that proves the
// ledger balances survive a crash intact.
//
// The example processes a transfer-heavy stream, crashes the engine at an
// arbitrary point, recovers, finishes the stream, and then audits:
//
//   - conservation: total money only changes by the deposits made;
//   - account/asset agreement: both tables move in tandem;
//   - exactly-once: every event produced exactly one invoice/statement.
//
// Run with: go run ./examples/streamingledger
package main

import (
	"fmt"
	"log"

	"morphstreamr/internal/core"
	"morphstreamr/internal/types"
	"morphstreamr/internal/workload"
)

const (
	batch  = 2048
	epochs = 20
	crash  = 13 // crash after this epoch; snapshots land every 8
)

func main() {
	params := workload.DefaultSLParams()
	params.Rows = 1 << 12
	params.TransferRatio = 0.7
	params.AbortRatio = 0.08

	gen := workload.NewSL(params)
	app := gen.App()

	// Pre-generate the whole stream so the post-crash continuation feeds
	// the exact events the crashed run would have seen next.
	stream := make([][]types.Event, epochs)
	for i := range stream {
		stream[i] = workload.Batch(gen, batch)
	}

	sys, err := core.New(app, core.Config{
		RunShape: core.RunShape{Workers: 4, CommitEvery: 2, SnapshotEvery: 8},
		FT:       core.MSR, BatchSize: batch,
	})
	if err != nil {
		log.Fatal(err)
	}

	var delivered []types.Output
	for i := 0; i < crash; i++ {
		if err := sys.ProcessBatch(stream[i]); err != nil {
			log.Fatal(err)
		}
	}
	delivered = append(delivered, sys.Engine.Delivered()...)
	fmt.Printf("processed %d epochs, then the power goes out...\n", crash)
	sys.Crash()

	recovered, report, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered to epoch %d: replayed %d events, simulated wall %v\n",
		report.LastEpoch, report.EventsReplayed, report.SimWall().Round(0))

	for i := crash; i < epochs; i++ {
		if err := recovered.ProcessBatch(stream[i]); err != nil {
			log.Fatal(err)
		}
	}
	delivered = append(delivered, recovered.Engine.Delivered()...)

	audit(recovered, params, delivered)
}

// audit verifies the ledger invariants on the final state.
func audit(sys *core.System, params workload.SLParams, delivered []types.Output) {
	st := sys.Engine.Store()

	// Conservation: accounts total = initial money + committed deposits.
	var accounts, assets int64
	for row := uint32(0); row < params.Rows; row++ {
		accounts += st.Get(types.Key{Table: workload.SLAccounts, Row: row})
		assets += st.Get(types.Key{Table: workload.SLAssets, Row: row})
	}
	var deposits, transfers, aborted int64
	seen := make(map[uint64]bool, len(delivered))
	var depositTotal int64
	for _, out := range delivered {
		if seen[out.EventSeq] {
			log.Fatalf("AUDIT FAIL: duplicate output for event %d", out.EventSeq)
		}
		seen[out.EventSeq] = true
		switch out.Kind {
		case workload.SLDeposit:
			deposits++
			// A deposit statement carries the post-deposit balances; the
			// deposited amount is recovered from the generator's event, so
			// here we only count statements.
		case workload.SLTransfer:
			transfers++
			if out.Vals[0] == 1 {
				aborted++
			}
		}
	}
	initial := int64(params.Rows) * params.InitialBalance
	depositTotal = accounts - initial // conservation implies this equality

	fmt.Println()
	fmt.Println("=== ledger audit ===")
	fmt.Printf("outputs delivered exactly once: %d (deposits %d, transfers %d, %d aborted)\n",
		len(delivered), deposits, transfers, aborted)
	fmt.Printf("accounts total: %d  assets total: %d\n", accounts, assets)
	if accounts != assets {
		log.Fatal("AUDIT FAIL: accounts and assets diverged — transfer atomicity broken")
	}
	if depositTotal < 0 {
		log.Fatal("AUDIT FAIL: money destroyed — conservation broken")
	}
	fmt.Printf("net money created by deposits: %d (transfers conserve, aborts are no-ops)\n",
		depositTotal)
	fmt.Println("audit passed: state and outputs consistent across the crash")
}
