// Pipeline: continuous operation through the stream layer — a Source
// feeding the engine, a Sink receiving exactly-once outputs — with the
// Section VII extensions enabled: asynchronous group commit (durable
// writes off the critical path) and log compression.
//
// The run crashes mid-stream, re-attaches the pipeline to the recovered
// system, and shows the sink's ledger ending up complete and
// duplicate-free.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"morphstreamr/internal/core"
	"morphstreamr/internal/storage"
	"morphstreamr/internal/stream"
	"morphstreamr/internal/workload"
)

const (
	batch       = 1024
	totalEvents = 16 * batch
)

func main() {
	params := workload.DefaultTPParams()
	gen := workload.NewTP(params)
	events := workload.Batch(gen, totalEvents)

	sys, err := core.New(gen.App(), core.Config{
		RunShape:    core.RunShape{Workers: 4, SnapshotEvery: 8},
		FT:          core.MSR,
		BatchSize:   batch,
		AsyncCommit: true, // commit off the critical path
		Compression: true, // DEFLATE the durable logs
	})
	if err != nil {
		log.Fatal(err)
	}

	sink := &stream.MemorySink{}
	src := &stream.SliceSource{Events: events}
	pipe := stream.NewPipeline(sys, src, sink)

	// Run ten epochs, then lose power.
	if err := pipe.Run(10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline delivered %d outputs, then the node dies\n", len(sink.Outputs))
	sys.Crash()

	recovered, report, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d events replayed, simulated wall %v\n",
		report.EventsReplayed, report.SimWall().Round(0))

	// Re-attach: the source skips what the engine already persisted; the
	// sink keeps its ledger and must see no duplicates.
	resumeSrc := &stream.SliceSource{Events: events}
	resumeSrc.Skip(int(report.LastEpoch) * batch)
	if err := stream.NewPipeline(recovered, resumeSrc, sink).Run(0); err != nil {
		log.Fatal(err)
	}

	seen := make(map[uint64]bool, len(sink.Outputs))
	var tolls int64
	for _, out := range sink.Outputs {
		if seen[out.EventSeq] {
			log.Fatalf("duplicate output for event %d", out.EventSeq)
		}
		seen[out.EventSeq] = true
		if out.Vals[0] == 0 {
			tolls += out.Vals[1]
		}
	}
	fmt.Printf("sink holds %d/%d outputs, exactly once; total tolls %d\n",
		len(sink.Outputs), totalEvents, tolls)

	dev := sys.Cfg.Device
	if th, ok := dev.(*storage.Throttled); ok {
		dev = th.Inner
	}
	if c, ok := dev.(*storage.Compressed); ok {
		fmt.Printf("durable log compression ratio: %.2f\n", c.Ratio())
	}
}
