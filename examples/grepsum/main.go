// Grep&Sum: the skew-heavy analytics workload, demonstrating workload-aware
// log commitment (Section VI-B). The example profiles two very different
// Grep&Sum configurations — uniform with no dependencies versus highly
// skewed with cross-partition reads — and shows the advisor picking a long
// commit epoch for the first and a short one for the second, then runs
// both through a crash to show the recovery consequences.
//
// Run with: go run ./examples/grepsum
package main

import (
	"fmt"
	"log"

	"morphstreamr/internal/core"
	"morphstreamr/internal/workload"
)

const (
	batch  = 4096
	epochs = 24 // snapshots at 16; crash at 24 leaves 8 epochs to recover
)

func main() {
	configs := []struct {
		name string
		p    workload.GSParams
	}{
		{"uniform, no dependencies (LSFD)", func() workload.GSParams {
			p := workload.DefaultGSParams()
			p.Theta, p.Reads = 0, 0
			return p
		}()},
		{"skewed, cross-partition reads (HSMD)", func() workload.GSParams {
			p := workload.DefaultGSParams()
			p.Theta, p.Reads, p.MultiPartitionRatio = 1.2, 3, 0.8
			return p
		}()},
	}

	for _, cfg := range configs {
		fmt.Printf("=== %s ===\n", cfg.name)
		gen := workload.NewGS(cfg.p)
		sys, err := core.New(gen.App(), core.Config{
			RunShape: core.RunShape{
				Workers:       4,
				SnapshotEvery: 16,
				AutoCommit:    true, // let the advisor pick the commit epoch
			},
			FT:        core.MSR,
			BatchSize: batch,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < epochs; i++ {
			if err := sys.ProcessBatch(workload.Batch(gen, batch)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("advisor chose a log commitment epoch of %d batch(es)\n",
			sys.Engine.CommitEvery())
		fmt.Printf("runtime: %.0f events/s; ft overhead: %v\n",
			sys.Engine.Throughput(), sys.Engine.Runtime())

		sys.Crash()
		recovered, report, err := sys.Recover()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovery: %d events in simulated %v (%.0f events/s)\n",
			report.EventsReplayed, report.SimWall().Round(0), report.Throughput())

		// Show the skew the engine just survived: top records by write count
		// are unavailable post-hoc, but the delivered sums tell the story.
		outs := recovered.Engine.Delivered()
		fmt.Printf("outputs delivered after recovery: %d\n\n", len(outs))
	}
}
