// Toll Processing: the Linear Road-style workload where invalid vehicle
// reports abort their transactions. The example contrasts recovery under
// global checkpointing (CKPT) and MorphStreamR (MSR) on the same abort-
// heavy stream — showing abort pushdown doing its job: MSR never spends
// recovery time re-discovering that a third of the events were doomed.
//
// Run with: go run ./examples/tollprocessing
package main

import (
	"fmt"
	"log"

	"morphstreamr/internal/core"
	"morphstreamr/internal/engine"
	"morphstreamr/internal/ft/ftapi"
	"morphstreamr/internal/workload"
)

const (
	batch  = 4096
	epochs = 12 // snapshot at 8, crash at 12: recovery replays 4 epochs
)

func main() {
	params := workload.DefaultTPParams()
	params.AbortRatio = 0.35

	fmt.Printf("toll processing: %d road segments, %.0f%% invalid reports\n",
		params.Segments, params.AbortRatio*100)

	for _, kind := range []ftapi.Kind{ftapi.CKPT, ftapi.MSR} {
		report, tolls, abortedOutputs, pending := run(kind, params)
		fmt.Printf("\n--- %v ---\n", kind)
		fmt.Printf("recovered %d events, simulated wall %v\n",
			report.EventsReplayed, report.SimWall().Round(0))
		bd := report.Breakdown.PerWorker(report.Workers)
		fmt.Printf("breakdown: %v\n", bd)
		fmt.Printf("abort handling during recovery: %v\n", bd.Abort)
		fmt.Printf("tolls charged so far: %d; invalid reports rejected: %d\n",
			tolls, abortedOutputs)
		if pending > 0 {
			fmt.Printf("(%d outputs still await their durability gate — CKPT releases "+
				"outputs only at snapshot markers)\n", pending)
		}
	}
}

// run processes the stream under one scheme, crashes, recovers, and
// tallies the delivered outputs.
func run(kind ftapi.Kind, params workload.TPParams) (*engine.RecoveryReport, int64, int, int) {
	gen := workload.NewTP(params)
	sys, err := core.New(gen.App(), core.Config{
		RunShape: core.RunShape{Workers: 4, SnapshotEvery: 8},
		FT:       kind, BatchSize: batch,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < epochs; i++ {
		if err := sys.ProcessBatch(workload.Batch(gen, batch)); err != nil {
			log.Fatal(err)
		}
	}
	sys.Crash()
	recovered, report, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	var tolls int64
	aborted := 0
	for _, out := range recovered.Engine.Delivered() {
		if out.Vals[0] == 1 {
			aborted++
			continue
		}
		tolls += out.Vals[1]
	}
	// Outputs delivered before the crash live in the crashed engine's
	// ledger; merge the tallies.
	for _, out := range sys.Engine.Delivered() {
		if out.Vals[0] == 1 {
			aborted++
			continue
		}
		tolls += out.Vals[1]
	}
	return report, tolls, aborted, recovered.Engine.PendingOutputs()
}
