module morphstreamr

go 1.22
